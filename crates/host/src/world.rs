//! The testbed world: every substrate composed into one discrete-event
//! simulation reproducing the paper's receiver-host datapath (Fig. 2).
//!
//! The life of a packet, exactly as §2 describes it:
//!
//! 1. a sender flow transmits over its access link into the incast switch;
//! 2. the switch egress delivers it to the receiver NIC's input buffer
//!    (tail-drop — the host drop point);
//! 3. the DMA pipeline admits the head-of-line packet when PCIe posted
//!    credits allow, consumes an Rx descriptor, translates the descriptor
//!    fetch / payload write / completion write through the IOMMU (IOTLB
//!    misses walk the page table at memory-subsystem latency);
//! 4. the write serialises through PCIe and the memory bus, after which
//!    credits return and the next packet can be admitted — any latency on
//!    this path shrinks the usable in-flight window (Little's law);
//! 5. a receiver thread (dedicated core) processes the packet, frees the
//!    buffer, replenishes a descriptor, and emits an ACK echoing the
//!    measured *host delay* (NIC arrival → processing done) — the signal
//!    Swift compares against its 100 µs target.

use crate::config::{CcKind, TestbedConfig};
use crate::error::RunError;
use crate::metrics::{MetricsCollector, RunMetrics};
use crate::vlink::VariableRateLink;
use hostcc_fabric::{
    EnqueueOutcome, FlowId, GenSlab, Link, PacketRef, PacketStore, SlabRef, SwitchPort, WireMsg,
};
use hostcc_faults::{FaultKind, FaultState, RecoveryTracker};
use hostcc_iommu::Iommu;
use hostcc_mem::{Iova, PageSize, RecycleOrder, RegionRegistry, RxBufferPool};
use hostcc_memsys::{AgentClass, AgentId, MemorySystem, StreamAntagonist};
use hostcc_nic::Nic;
use hostcc_pcie::{CreditState, ReplayChannel, ReplayConfig, WriteCredits};
use hostcc_sim::{
    fnv1a_64, stream_seed, DispatchProfile, Engine, Envelope, EventQueue, Ewma, Queue, RunOutcome,
    Scheduler, SerialLink, SimDuration, SimRng, SimTime, SnapError, SnapReader, SnapWriter, World,
};
use hostcc_telemetry::{SignalInputs, Telemetry};
use hostcc_trace::{
    CounterRegistry, SampleRing, Stage, TimelineRecorder, TraceConfig, TraceEvent, Tracer,
};
use hostcc_transport::{
    Dctcp, FixedWindow, FlowStats, HostAware, ReceiverFlow, RpcConfig, RpcReadChannel, SendBlocked,
    SenderFlow, Swift,
};

/// Build one flow's congestion controller, drawing the target-dispersion
/// scale from `rng` exactly as `Testbed::new` always has (shared with the
/// fleet wiring path so remote flows get the same CC diversity and the
/// draw sequence stays bit-identical).
fn build_cc(
    kind: &CcKind,
    dispersion: f64,
    initial_cwnd: f64,
    rng: &mut SimRng,
) -> Box<dyn hostcc_transport::CongestionControl> {
    match kind {
        CcKind::Swift(sc) => {
            let mut sc = sc.clone();
            let d = dispersion.clamp(0.0, 0.9);
            let scale = 1.0 - d + 2.0 * d * rng.next_f64();
            sc.fabric_base_target = sc.fabric_base_target.mul_f64(scale);
            sc.fs_range = sc.fs_range.mul_f64(scale);
            Box::new(Swift::new(sc, initial_cwnd))
        }
        CcKind::HostAware(hc) => {
            let mut hc = hc.clone();
            let d = dispersion.clamp(0.0, 0.9);
            let scale = 1.0 - d + 2.0 * d * rng.next_f64();
            hc.swift.fabric_base_target = hc.swift.fabric_base_target.mul_f64(scale);
            hc.swift.fs_range = hc.swift.fs_range.mul_f64(scale);
            Box::new(HostAware::new(hc, initial_cwnd))
        }
        CcKind::Dctcp(dc) => Box::new(Dctcp::new(dc.clone(), initial_cwnd)),
        CcKind::Fixed(w) => Box::new(FixedWindow::new(*w)),
    }
}

/// Sample one connection's RPC read size from the configured mix (no
/// draw when the mix is empty — zero-mix runs stay bit-identical).
fn sample_rpc_cfg(cfg: &TestbedConfig, rng: &mut SimRng) -> RpcConfig {
    let mut rpc_cfg = cfg.rpc;
    let total_weight: f64 = cfg.read_size_mix.iter().map(|(_, w)| w).sum();
    if total_weight > 0.0 {
        let mut pick = rng.next_f64() * total_weight;
        for &(bytes, w) in &cfg.read_size_mix {
            pick -= w;
            if pick <= 0.0 {
                rpc_cfg.read_bytes = bytes.max(rpc_cfg.mtu_payload);
                break;
            }
        }
    }
    rpc_cfg
}

/// Build one sender access link, drawing its propagation-spread factor
/// from `rng` (shared with the fleet wiring path).
fn build_sender_link(cfg: &TestbedConfig, rng: &mut SimRng) -> Link {
    let spread = cfg.propagation_spread.clamp(0.0, 0.95);
    let factor = 1.0 - spread + 2.0 * spread * rng.next_f64();
    Link::new(cfg.sender_link_bps, cfg.hop_propagation.mul_f64(factor))
}

/// A DMA in flight between credit admission and completion.
///
/// Besides routing state, the job carries its admission time and the
/// integer-nanosecond DMA stage components (PCIe, memory, IOMMU) so that
/// `CpuDone` can reconstruct an *exact* per-stage decomposition of the
/// packet's host delay: `buffer + pcie + iommu + memory + cpu ==
/// host_delay`, to the nanosecond.
///
/// Jobs live in the testbed's DMA slab between `DmaLaunch` and `CpuDone`;
/// events carry only a [`DmaRef`] handle. The packet itself is referenced
/// by handle too — its bytes stay in the `PacketStore` for the whole
/// NIC-to-ACK lifecycle. The per-packet PCIe credit cost is a testbed
/// constant (`pkt_credits`), so the job does not repeat it.
#[derive(Debug, Clone, Copy)]
pub struct DmaJob {
    pkt: PacketRef,
    nic_arrival: SimTime,
    buffer: Iova,
    thread: u32,
    /// When DMA admission happened (credits granted, descriptor taken).
    admitted: SimTime,
    /// PCIe serialisation + fixed DMA latency (+ descriptor-read round
    /// trip when modelled), ns.
    pcie_ns: u64,
    /// Memory-bus serialisation + commit latency, ns.
    mem_ns: u64,
    /// IOMMU translation: lookups + page walks (+ invalidation stall), ns.
    iommu_ns: u64,
}

impl DmaJob {
    /// Serialize an in-flight DMA job for a checkpoint.
    fn save_state(&self, w: &mut SnapWriter) {
        self.pkt.save_state(w);
        w.time(self.nic_arrival);
        w.u64(self.buffer.as_u64());
        w.u32(self.thread);
        w.time(self.admitted);
        w.u64(self.pcie_ns);
        w.u64(self.mem_ns);
        w.u64(self.iommu_ns);
    }

    /// Rebuild a job from [`save_state`](Self::save_state) output.
    fn load_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(DmaJob {
            pkt: PacketRef::load_state(r)?,
            nic_arrival: r.time()?,
            buffer: Iova(r.u64()?),
            thread: r.u32()?,
            admitted: r.time()?,
            pcie_ns: r.u64()?,
            mem_ns: r.u64()?,
            iommu_ns: r.u64()?,
        })
    }
}

/// Handle to a [`DmaJob`] in the testbed's DMA slab.
pub type DmaRef = SlabRef<DmaJob>;

/// Simulation events.
///
/// Events are handle-sized: packets and DMA jobs live in generational
/// slabs on the testbed and events reference them by 8-byte handles, so
/// the event queue's node arena shuttles at most 24 bytes per event
/// (vs. ~128 when payloads rode in the events by value).
#[derive(Debug, Clone, Copy)]
pub enum Event {
    /// A sender flow attempts to transmit.
    TrySend(u32),
    /// A data packet reaches the incast switch egress.
    AtSwitch(PacketRef),
    /// A packet arrives at the receiver NIC.
    AtNic(PacketRef),
    /// Attempt to admit queued packets into the DMA pipeline.
    DmaLaunch,
    /// A packet's DMA retired to memory; credits return.
    DmaComplete(DmaRef),
    /// A receiver thread finished processing a packet.
    CpuDone(DmaRef),
    /// Fused macro-event for an uncontended DMA chain: the packet's DMA
    /// retires *and* its (already reserved) receiver core finishes at
    /// `now + per_pkt_cost`. Emitted only when chain fusion is active and
    /// the launch path proved the core idle through the DMA completion —
    /// one wheel round-trip instead of two for the common case.
    DmaChain(DmaRef),
    /// An ACK (with piggybacked RPC frontier) reaches its sender.
    AckToSender {
        /// Flow index.
        flow: u32,
        /// The ACK packet.
        ack: PacketRef,
        /// Piggybacked data frontier.
        frontier: u64,
    },
    /// Periodic retransmission-timer sweep.
    RtoSweep,
    /// Periodic memory-demand refresh.
    MemTick,
    /// A fault-plan transition: `(spec_index << 2) | phase`, where phase
    /// 0 opens a window, 1 closes one, and 2 is an in-window tick (the
    /// IOTLB-storm flush cadence). Packed to keep the event handle-sized.
    Fault(u32),
    /// Periodic telemetry sampling tick (scheduled only when telemetry is
    /// enabled, so telemetry-off runs dispatch an identical event stream).
    TelemetryTick,
    /// A cross-host fabric message (data or returning ACK) fires at this
    /// host. Payload-free on purpose: the message itself waits in the
    /// fabric port's FIFO inbox — the parallel engine injects messages in
    /// `(fire, src_host, seq)` order and the wheel preserves FIFO within
    /// a timestamp, so the queue order matches the injection order and
    /// the event stays inside the 24-byte budget.
    RemoteArrival,
}

// The whole point of the handle-based datapath: events must stay small
// enough that the wheel's node arena is cache-dense. Grows here fail the
// build, not a benchmark three PRs later.
const _: () = assert!(
    std::mem::size_of::<Event>() <= 24,
    "Event outgrew its 24-byte budget; keep payloads in slabs, not events"
);

impl Event {
    /// Serialize one pending event for a checkpoint (tag + payload).
    pub fn save_state(&self, w: &mut SnapWriter) {
        match *self {
            Event::TrySend(f) => {
                w.u8(0);
                w.u32(f);
            }
            Event::AtSwitch(p) => {
                w.u8(1);
                p.save_state(w);
            }
            Event::AtNic(p) => {
                w.u8(2);
                p.save_state(w);
            }
            Event::DmaLaunch => w.u8(3),
            Event::DmaComplete(j) => {
                w.u8(4);
                j.save_state(w);
            }
            Event::CpuDone(j) => {
                w.u8(5);
                j.save_state(w);
            }
            Event::DmaChain(j) => {
                w.u8(6);
                j.save_state(w);
            }
            Event::AckToSender {
                flow,
                ack,
                frontier,
            } => {
                w.u8(7);
                w.u32(flow);
                ack.save_state(w);
                w.u64(frontier);
            }
            Event::RtoSweep => w.u8(8),
            Event::MemTick => w.u8(9),
            Event::Fault(code) => {
                w.u8(10);
                w.u32(code);
            }
            Event::TelemetryTick => w.u8(11),
            Event::RemoteArrival => w.u8(12),
        }
    }

    /// Rebuild an event from [`save_state`](Self::save_state) output.
    pub fn load_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => Event::TrySend(r.u32()?),
            1 => Event::AtSwitch(PacketRef::load_state(r)?),
            2 => Event::AtNic(PacketRef::load_state(r)?),
            3 => Event::DmaLaunch,
            4 => Event::DmaComplete(DmaRef::load_state(r)?),
            5 => Event::CpuDone(DmaRef::load_state(r)?),
            6 => Event::DmaChain(DmaRef::load_state(r)?),
            7 => Event::AckToSender {
                flow: r.u32()?,
                ack: PacketRef::load_state(r)?,
                frontier: r.u64()?,
            },
            8 => Event::RtoSweep,
            9 => Event::MemTick,
            10 => Event::Fault(r.u32()?),
            11 => Event::TelemetryTick,
            12 => Event::RemoteArrival,
            _ => return Err(SnapError::Corrupt("event tag out of range")),
        })
    }
}

/// Role of a virtual flow slot appended by fleet wiring. Slot `k`
/// (flow index `senders * receiver_threads + k`) owns virtual sender id
/// `senders + k`, so the existing per-sender vectors stay uniformly
/// indexed.
#[derive(Debug, Clone, Copy)]
enum RemoteEntry {
    /// This host transmits; the data crosses the fabric to `dst_host`,
    /// stamped with the destination-side flow id so the receive path
    /// needs no translation table.
    Sender {
        /// Destination host (global fleet id).
        dst_host: u32,
        /// Flow id of the paired receiver slot on the destination.
        dst_flow_id: FlowId,
    },
    /// This host receives; ACKs return across the fabric to flow
    /// `src_flow` on `src_host`.
    Receiver {
        /// Source host (global fleet id).
        src_host: u32,
        /// Flow index of the paired sender slot on the source.
        src_flow: u32,
    },
}

/// Inter-host fabric attachment: identity, minimum latency (the parallel
/// engine's lookahead), and the outbound/inbound message staging areas.
/// `None` on single-host testbeds — the entire remote path costs one
/// `is_empty` branch there.
#[derive(Debug)]
struct FabricPort {
    /// This host's global fleet id (stamped on outgoing envelopes).
    host_id: u32,
    /// Minimum inter-host delivery latency, added to every crossing.
    latency: SimDuration,
    /// Monotonic per-host envelope counter: the deterministic merge
    /// tiebreaker `(fire, src_host, seq)` needs uniqueness per host.
    wire_seq: u64,
    /// Envelopes emitted since the last `take_outbound` drain.
    outbox: Vec<Envelope<WireMsg>>,
    /// Inbound messages awaiting their `RemoteArrival` events, in
    /// delivery order (the engine injects in merge order; the wheel's
    /// FIFO-within-timestamp keeps event order aligned with this queue).
    inbox: std::collections::VecDeque<WireMsg>,
}

/// The complete simulated testbed (implements [`World`]).
pub struct Testbed {
    cfg: TestbedConfig,
    rng: SimRng,
    // --- senders & flows ---
    flows: Vec<SenderFlow>,
    flow_ids: Vec<FlowId>,
    sender_links: Vec<Link>,
    recv_flows: Vec<ReceiverFlow>,
    rpc: Vec<RpcReadChannel>,
    /// Roles of the virtual flow slots appended by fleet wiring (empty on
    /// single-host testbeds; slot `k` is flow `base_flows() + k`).
    remote: Vec<RemoteEntry>,
    /// Inter-host fabric attachment (`None` outside a fleet).
    fabric: Option<FabricPort>,
    // --- fabric ---
    switch: SwitchPort,
    /// Every live packet, from `TrySend` until its ACK is consumed at the
    /// sender (or it drops). Events and queues carry `PacketRef` handles.
    store: PacketStore,
    /// DMA jobs in flight between admission and `CpuDone`.
    dma: GenSlab<DmaJob>,
    // --- host ---
    nic: Nic,
    iommu: Iommu,
    mem: MemorySystem,
    nic_agent: AgentId,
    app_agent: AgentId,
    antagonist: StreamAntagonist,
    credits: CreditState,
    pcie_pipe: SerialLink,
    mem_pipe: VariableRateLink,
    pools: Vec<RxBufferPool>,
    core_free_at: Vec<SimTime>,
    ring_cursor: Vec<[u64; 3]>,
    /// Hot-window page counts per control structure (ring, CQ, ACK pool) —
    /// run constants hoisted out of the per-packet ring-offset computation.
    ring_pages: [u64; 3],
    /// Per-packet receiver-core cost (plus strict-mode invalidation work):
    /// a run constant precomputed at build.
    per_pkt_cost: SimDuration,
    /// Cached per-walk-access latency (ns); valid while `cached_mem_epoch`
    /// matches the memory system's demand epoch.
    cached_walk_ns: f64,
    /// Cached DDIO commit latency term (ns); same epoch key.
    cached_commit_ns: f64,
    /// Cached descriptor-read round-trip (ns); same epoch key.
    cached_read_rt_ns: u64,
    /// Memory-system epoch the cached latency terms were derived at.
    cached_mem_epoch: u64,
    /// Scratch for batched NIC arrivals (taken/restored per run; never
    /// reallocated on the steady-state path).
    nic_run_scratch: Vec<(PacketRef, u32)>,
    // --- demand window ---
    window_payload: u64,
    window_walks: u64,
    last_tick: SimTime,
    nic_demand: Ewma,
    app_demand: Ewma,
    // --- credit constants ---
    /// PCIe credit cost of one full-MTU payload write (precomputed).
    pkt_credits: WriteCredits,
    /// Fraction of DMA writes currently reaching DRAM (DDIO leak),
    /// refreshed every mem tick.
    ddio_leak: f64,
    /// Whether a `DmaLaunch` event is already scheduled at the current
    /// instant. Packet arrivals and DMA completions both kick the launch
    /// loop; coalescing the kicks removes one queue round-trip per packet
    /// from the dispatch hot path without changing admission order (the
    /// launch handler drains every admissible packet anyway).
    dma_launch_pending: bool,
    /// Chain fusion enabled for this run: `cfg.fuse_chains` and no fault
    /// plan (CorePreempt windows rewrite `core_free_at`, which would
    /// invalidate launch-time core reservations).
    fuse_active: bool,
    /// Unfused DMA jobs in flight per receiver thread. A chain may only
    /// fuse when this is zero for its thread: a pending unfused
    /// completion claims the core at *dispatch* time, so fusing past it
    /// could start the fused packet's CPU work on a core an earlier
    /// packet is about to take.
    unfused_inflight: Vec<u32>,
    /// Rolling trace of DMA-launch thread ids (diagnostics).
    pub launch_trace: SampleRing<u32>,
    /// Mean switch backlog accumulator (diagnostics).
    pub switch_backlog_sum: f64,
    /// Mean sender-link backlog accumulator (diagnostics).
    pub link_backlog_sum: f64,
    /// Backlog sample count (diagnostics).
    pub backlog_samples: u64,
    /// Metrics accumulator (armed after warm-up).
    pub metrics: MetricsCollector,
    /// Datapath event tracer (disabled by default; purely observational).
    pub tracer: Tracer,
    /// Named counters collected from every datapath component.
    pub counters: CounterRegistry,
    /// Periodic time-series recorder (disabled by default).
    pub timeline: TimelineRecorder,
    /// Continuous host-congestion telemetry: sampler + episode detector +
    /// flight recorder (disabled by default; purely observational).
    pub telemetry: Telemetry,
    rtx_base: u64,
    timeout_base: u64,
    // --- fault injection ---
    /// Open-window bookkeeping + fault counters (empty-plan: all idle).
    pub faults: FaultState,
    /// Dedicated RNG stream for fault coin flips (NAK draws). Kept apart
    /// from the workload RNG so wiring the fault layer never perturbs a
    /// zero-fault run's draws.
    fault_rng: SimRng,
    /// PCIe DLLP ACK/NAK replay state (exercised only during replay
    /// windows; an idle channel costs one branch per DMA).
    replay: ReplayChannel,
    /// Goodput before/during/after fault windows.
    recovery: RecoveryTracker,
    /// Cached aggregates, refreshed on window edges (hot-path reads).
    fault_link_down: bool,
    fault_nak_rate: f64,
    fault_refill_stalled: bool,
    fault_throttle: f64,
    /// Refills deferred per thread while a descriptor stall is open.
    fault_pending_refills: Vec<u32>,
    /// Diagnostic counterfactual switch (campaign bisect): when set, fault
    /// windows that have not yet opened are skipped, so a replay from a
    /// checkpoint shows what the run would have done without the fault.
    /// Transient — never serialized; a checkpoint taken after suppression
    /// does not record it.
    faults_suppressed: bool,
    /// Last NIC memory-bandwidth grant computed by the mem tick (so a
    /// throttle edge can re-rate the pipe immediately, between ticks).
    last_nic_avail: f64,
    /// Delivered-byte watermark for recovery goodput sampling.
    last_delivered_bytes: u64,
}

impl Testbed {
    /// Build the testbed from a configuration. Registers all memory
    /// regions, pre-posts descriptor rings and creates every flow.
    pub fn new(cfg: TestbedConfig) -> Self {
        let mut rng = SimRng::new(cfg.seed);
        let wire = cfg.wire;

        // Memory system and agents.
        let mut mem = MemorySystem::new(cfg.memsys.clone());
        let nic_agent = mem.register_agent("nic-dma", AgentClass::Io);
        let app_agent = mem.register_agent("receiver-copies", AgentClass::Cpu);
        let mut antagonist = StreamAntagonist::new(&mut mem, cfg.stream.clone());
        antagonist.set_cores(&mut mem, cfg.antagonist_cores);

        // IOMMU and registered regions.
        let mut iommu = Iommu::new(cfg.iommu.clone());
        let threads = cfg.receiver_threads;
        let phys = (threads as u64 + 2) * (cfg.rx_region_bytes + (4 << 20)) + (256 << 20);
        let mut registry = RegionRegistry::new(phys);

        let mut nic = Nic::new(cfg.nic.clone());
        let mut pools = Vec::with_capacity(threads as usize);
        for t in 0..threads {
            // Data region (hugepage or 4K mapping per the scenario).
            let data = registry
                .register(
                    iommu.page_table_mut(),
                    t,
                    cfg.rx_region_bytes,
                    cfg.data_page,
                )
                .expect("phys budget");
            // Control region: descriptor ring + CQ + ACK buffer, 4 KiB
            // mappings (as in the paper's setup).
            let ring_bytes = cfg.nic.ring_entries as u64 * cfg.nic.desc_bytes;
            let cq_bytes = cfg.nic.ring_entries as u64 * cfg.nic.cqe_bytes;
            let ack_pool_bytes = cfg.ack_pool_pages.max(1) as u64 * 4096;
            let ctrl_len = ring_bytes + cq_bytes + ack_pool_bytes;
            let ctrl = registry
                .register(iommu.page_table_mut(), t, ctrl_len, PageSize::Size4K)
                .expect("phys budget");
            let ring_base = ctrl.iova_base;
            let cq_base = ctrl.iova_base.add(ring_bytes);
            let ack_buf = ctrl.iova_base.add(ring_bytes + cq_bytes);
            let q = nic.add_queue(ring_base, cq_base, ack_buf);

            let order = match cfg.recycling {
                crate::config::BufferRecycling::Scattered => RecycleOrder::Random {
                    // SplitMix64-finalized per-thread stream: adjacent
                    // (seed, thread) pairs must not yield correlated
                    // recycling orders.
                    seed: stream_seed(cfg.seed, t as u64),
                },
                crate::config::BufferRecycling::Sequential => RecycleOrder::Fifo,
                crate::config::BufferRecycling::Hot => RecycleOrder::Lifo,
            };
            let mut pool = RxBufferPool::new(&data, cfg.buffer_slot_bytes, order);
            // Pre-post the descriptor ring. A hot (on-NIC-memory-style)
            // pool posts a shallow ring so the outstanding buffer set
            // stays small; the default stack fills the whole ring.
            let prepost = match cfg.recycling {
                crate::config::BufferRecycling::Hot => 64,
                _ => cfg.nic.ring_entries,
            };
            for _ in 0..prepost {
                if nic.queues[q].ring.free_slots() == 0 {
                    break;
                }
                match pool.alloc() {
                    Some(b) => {
                        nic.queues[q].ring.post(b);
                    }
                    None => break,
                }
            }
            pools.push(pool);
        }

        // Flows: one per (sender, thread).
        let n_flows = (cfg.senders * threads) as usize;
        let mut flows = Vec::with_capacity(n_flows);
        let mut flow_ids = Vec::with_capacity(n_flows);
        let mut recv_flows = Vec::with_capacity(n_flows);
        let mut rpc = Vec::with_capacity(n_flows);
        for s in 0..cfg.senders {
            for t in 0..threads {
                // Sample this connection's read size from the mix.
                let rpc_cfg = sample_rpc_cfg(&cfg, &mut rng);
                let cc = build_cc(
                    &cfg.cc,
                    cfg.target_dispersion,
                    cfg.flow.initial_cwnd,
                    &mut rng,
                );
                let mut f = SenderFlow::new(cfg.flow.clone(), cc);
                let ch = RpcReadChannel::new(rpc_cfg);
                f.set_data_frontier(ch.data_frontier());
                flows.push(f);
                flow_ids.push(FlowId {
                    sender: s,
                    thread: t,
                });
                recv_flows.push(ReceiverFlow::new());
                rpc.push(ch);
            }
        }

        let sender_links: Vec<Link> = (0..cfg.senders)
            .map(|_| build_sender_link(&cfg, &mut rng))
            .collect();
        let switch = SwitchPort::new(
            cfg.access_link_bps,
            cfg.hop_propagation,
            cfg.switch_buffer_bytes,
            cfg.ecn_threshold_bytes,
        );

        let pcie_pipe = SerialLink::new(cfg.pcie.effective_goodput_bytes_per_sec());
        let mem_pipe = VariableRateLink::new(cfg.memsys.achievable_bytes_per_sec());
        // Quantised time happens once, at the event-queue boundary: the
        // scheduler's queue rounds every pushed timestamp up to
        // `cfg.resolution`, so all dispatch instants land on the grid and
        // nearby completions share wheel slots. The rate models above
        // deliberately keep their *internal* clocks exact — rounding each
        // serialisation term inside a link would cap it at one packet per
        // grid step (a 400 G link quantised per-packet to 64 ns behaves
        // like 128 G), whereas quantising only the dispatch instant
        // displaces each event by < one grid step without distorting
        // sustained rates. (Components still expose `set_resolution` for
        // callers that want coarse internal clocks.)
        let credits = CreditState::new(cfg.credits);
        let pkt_credits = WriteCredits::for_write(wire.mtu_payload as u64, cfg.pcie.max_payload);

        // Slab working sets: packets in flight are bounded by the flows'
        // aggregate windows plus queued buffers; DMA jobs by the credit
        // window times threads. Both slabs grow to the real peak and then
        // recycle; these pre-sizes just skip the early doublings.
        let store = PacketStore::with_capacity(1024.max(n_flows * 16));
        let dma = GenSlab::with_capacity(256);

        let faults = FaultState::new(&cfg.faults);
        let fault_rng = SimRng::new(stream_seed(cfg.seed ^ cfg.faults.seed, 0xFA017));
        let last_nic_avail = cfg.memsys.achievable_bytes_per_sec();

        // Hot-window page counts and the per-packet CPU cost are run
        // constants; hoist them out of the per-packet handlers.
        let ring_bytes = cfg.nic.ring_entries as u64 * cfg.nic.desc_bytes;
        let cq_bytes = cfg.nic.ring_entries as u64 * cfg.nic.cqe_bytes;
        let ack_pool_bytes = cfg.ack_pool_pages.max(1) as u64 * 4096;
        let ring_pages = [
            (ring_bytes / 4096)
                .max(1)
                .min(cfg.ring_hot_pages.max(1) as u64),
            (cq_bytes / 4096).max(1).min(cfg.cq_hot_pages.max(1) as u64),
            (ack_pool_bytes / 4096)
                .max(1)
                .min(cfg.ack_pool_pages.max(1) as u64),
        ];
        let mut per_pkt_cost = cfg.core_pkt_cost;
        if cfg.strict_iommu {
            per_pkt_cost += cfg.invalidation_cost;
        }

        let _ = &mut rng;
        let mut tb = Testbed {
            rng,
            flows,
            flow_ids,
            sender_links,
            recv_flows,
            rpc,
            remote: Vec::new(),
            fabric: None,
            switch,
            store,
            dma,
            nic,
            iommu,
            mem,
            nic_agent,
            app_agent,
            antagonist,
            credits,
            pcie_pipe,
            mem_pipe,
            pools,
            core_free_at: vec![SimTime::ZERO; threads as usize],
            ring_cursor: vec![[0; 3]; threads as usize],
            ring_pages,
            per_pkt_cost,
            cached_walk_ns: 0.0,
            cached_commit_ns: 0.0,
            cached_read_rt_ns: 0,
            cached_mem_epoch: u64::MAX,
            nic_run_scratch: Vec::with_capacity(1024),
            window_payload: 0,
            window_walks: 0,
            last_tick: SimTime::ZERO,
            nic_demand: Ewma::new(0.3),
            app_demand: Ewma::new(0.3),
            pkt_credits,
            ddio_leak: 1.0,
            dma_launch_pending: false,
            fuse_active: cfg.fuse_chains && cfg.faults.is_empty(),
            unfused_inflight: vec![0; threads as usize],
            launch_trace: SampleRing::new(8192),
            switch_backlog_sum: 0.0,
            link_backlog_sum: 0.0,
            backlog_samples: 0,
            metrics: MetricsCollector::new(),
            tracer: Tracer::disabled(),
            counters: CounterRegistry::new(),
            timeline: TimelineRecorder::disabled(),
            telemetry: Telemetry::new(cfg.telemetry),
            rtx_base: 0,
            timeout_base: 0,
            faults,
            fault_rng,
            replay: ReplayChannel::new(ReplayConfig::default()),
            recovery: RecoveryTracker::new(),
            fault_link_down: false,
            fault_nak_rate: 0.0,
            fault_refill_stalled: false,
            faults_suppressed: false,
            fault_throttle: 1.0,
            fault_pending_refills: vec![0; threads as usize],
            last_nic_avail,
            last_delivered_bytes: 0,
            cfg,
        };
        tb.refresh_latency_cache();
        tb
    }

    /// Install a trace configuration (tracer + timeline recorder). The
    /// tracer is purely observational: enabling it never changes event
    /// ordering, RNG draws or metrics.
    pub fn set_trace(&mut self, trace: TraceConfig) {
        self.tracer = Tracer::new(trace);
        self.timeline = TimelineRecorder::new(trace.timeline_period_ns);
    }

    /// The configuration this testbed was built with.
    pub fn config(&self) -> &TestbedConfig {
        &self.cfg
    }

    /// Kick off the simulation: initial send attempts + periodic timers.
    pub fn start<Q: Queue<Event>>(&mut self, sched: &mut Scheduler<Event, Q>) {
        let n = self.flows.len() as u32;
        for f in 0..n {
            // Fleet receiver slots hold no transmitting flow.
            if self.is_remote_receiver(f as usize) {
                continue;
            }
            // Slight deterministic desynchronisation of flow start times.
            let jitter = SimDuration::from_nanos((f as u64 * 193) % 20_000);
            sched.after(jitter, Event::TrySend(f));
        }
        sched.after(self.cfg.mem_tick, Event::MemTick);
        sched.after(self.cfg.rto_sweep, Event::RtoSweep);
        // Fault windows ride the same wheel as everything else: every
        // occurrence's opening edge is scheduled up front (closing edges
        // are scheduled when the window opens). Empty plan = no events.
        for (idx, spec) in self.cfg.faults.specs.iter().enumerate() {
            for at in spec.occurrences() {
                sched.after(at, Event::Fault((idx as u32) << 2));
            }
        }
        // The telemetry sampler rides the same wheel as everything else,
        // so batched and per-event dispatch sample at identical instants.
        // Telemetry off = no events: those runs stay bit-identical.
        if self.telemetry.is_enabled() {
            sched.after(
                SimDuration::from_nanos(self.telemetry.interval_ns()),
                Event::TelemetryTick,
            );
        }
    }

    fn flow_index(&self, id: FlowId) -> u32 {
        if id.sender >= self.cfg.senders {
            // Virtual sender from fleet wiring: slot k = sender - senders,
            // one flow per slot, appended after the local grid.
            self.base_flows() + (id.sender - self.cfg.senders)
        } else {
            id.sender * self.cfg.receiver_threads + id.thread
        }
    }

    /// Number of local (sender, thread) flows; remote slots start here.
    #[inline]
    fn base_flows(&self) -> u32 {
        self.cfg.senders * self.cfg.receiver_threads
    }

    /// Whether flow `f` is a fleet-wiring receiver slot (a placeholder
    /// sender that must never be started or swept into transmitting).
    #[inline]
    fn is_remote_receiver(&self, f: usize) -> bool {
        let base = self.base_flows() as usize;
        f >= base && matches!(self.remote[f - base], RemoteEntry::Receiver { .. })
    }

    // ---- fleet wiring (all calls happen before `start`) ----

    /// Attach this testbed to the inter-host fabric as `host_id`, with
    /// the given minimum crossing latency (the parallel engine's
    /// lookahead). Must precede any `add_remote_*` call.
    pub fn enable_fabric(&mut self, host_id: u32, latency: SimDuration) {
        assert!(
            latency > SimDuration::ZERO,
            "inter-host latency must be positive (it is the lookahead)"
        );
        self.fabric = Some(FabricPort {
            host_id,
            latency,
            wire_seq: 0,
            outbox: Vec::new(),
            inbox: std::collections::VecDeque::new(),
        });
    }

    /// Flow index the next `add_remote_*` call will allocate. The fleet
    /// builder reads this on the *sender* host before wiring the receiver
    /// side, so the receiver knows the return address up front.
    pub fn next_remote_flow(&self) -> u32 {
        self.flows.len() as u32
    }

    /// Whether this testbed can ever emit a fabric envelope: it is
    /// attached to the fabric *and* has at least one remote flow wired.
    /// The fleet layer uses this to withdraw send-free hosts from the
    /// parallel engine's epoch bound (super-epoch batching) — the answer
    /// is fixed once `start` runs, so it is a sound promise.
    pub fn coupled(&self) -> bool {
        self.fabric.is_some() && !self.remote.is_empty()
    }

    /// Allocate the receiver half of a cross-host flow terminating on
    /// local thread `thread`: a receiver flow + RPC read channel behind a
    /// placeholder sender slot. ACKs return across the fabric to
    /// `src_flow` on `src_host`. Returns `(flow_index, flow_id,
    /// initial_data_frontier)` — the sender half embeds the flow id in
    /// its data packets and seeds its frontier from the returned value.
    pub fn add_remote_receiver(
        &mut self,
        src_host: u32,
        src_flow: u32,
        thread: u32,
    ) -> (u32, FlowId, u64) {
        assert!(
            self.fabric.is_some(),
            "enable_fabric before wiring remote flows"
        );
        let f = self.flows.len() as u32;
        let id = FlowId {
            sender: self.cfg.senders + self.remote.len() as u32,
            thread: thread % self.cfg.receiver_threads.max(1),
        };
        // Same per-connection draws as local flows (read-size mix, link
        // spread), from the host's own RNG: the wiring is a fixed part of
        // the fleet topology, so the draw sequence is independent of
        // shard count.
        let rpc_cfg = sample_rpc_cfg(&self.cfg, &mut self.rng);
        let ch = RpcReadChannel::new(rpc_cfg);
        let frontier = ch.data_frontier();
        // The slot's sender side never transmits (its TrySend is never
        // scheduled and no ACK ever addresses it); the placeholder just
        // keeps the flow vectors parallel.
        self.flows.push(SenderFlow::new(
            self.cfg.flow.clone(),
            Box::new(FixedWindow::new(1.0)),
        ));
        self.flow_ids.push(id);
        self.recv_flows.push(ReceiverFlow::new());
        self.rpc.push(ch);
        self.sender_links
            .push(build_sender_link(&self.cfg, &mut self.rng));
        self.remote
            .push(RemoteEntry::Receiver { src_host, src_flow });
        (f, id, frontier)
    }

    /// Allocate the sender half of a cross-host flow: a full sender flow
    /// (CC built exactly like local ones, including the dispersion draw)
    /// whose data packets cross the fabric to `dst_flow_id` on
    /// `dst_host`. Returns the new flow index — which the fleet builder
    /// already predicted via [`next_remote_flow`](Self::next_remote_flow).
    pub fn add_remote_sender(
        &mut self,
        dst_host: u32,
        dst_flow_id: FlowId,
        initial_frontier: u64,
    ) -> u32 {
        assert!(
            self.fabric.is_some(),
            "enable_fabric before wiring remote flows"
        );
        let f = self.flows.len() as u32;
        let id = FlowId {
            sender: self.cfg.senders + self.remote.len() as u32,
            thread: dst_flow_id.thread,
        };
        let cc = build_cc(
            &self.cfg.cc,
            self.cfg.target_dispersion,
            self.cfg.flow.initial_cwnd,
            &mut self.rng,
        );
        let mut fl = SenderFlow::new(self.cfg.flow.clone(), cc);
        fl.set_data_frontier(initial_frontier);
        self.flows.push(fl);
        self.flow_ids.push(id);
        // Unused on the sender host (data is consumed remotely); parallel
        // for uniform indexing.
        self.recv_flows.push(ReceiverFlow::new());
        self.rpc.push(RpcReadChannel::new(self.cfg.rpc));
        self.sender_links
            .push(build_sender_link(&self.cfg, &mut self.rng));
        self.remote.push(RemoteEntry::Sender {
            dst_host,
            dst_flow_id,
        });
        f
    }

    /// Move every envelope emitted since the last drain into `out`
    /// (parallel-engine send phase). No-op outside a fleet.
    pub fn take_outbound(&mut self, out: &mut Vec<Envelope<WireMsg>>) {
        if let Some(port) = self.fabric.as_mut() {
            out.append(&mut port.outbox);
        }
    }

    /// Queue an inbound fabric message; the caller schedules the matching
    /// [`Event::RemoteArrival`] at the envelope's fire time.
    pub fn push_inbound(&mut self, msg: WireMsg) {
        self.fabric
            .as_mut()
            .expect("inbound message without fabric")
            .inbox
            .push_back(msg);
    }

    /// Stamp and stage an outbound envelope: `fire` is the local
    /// emission-side arrival instant, to which the fabric crossing adds
    /// its minimum latency (so `fire >= now + lookahead` always holds).
    fn queue_remote(&mut self, fire: SimTime, dst_host: u32, msg: WireMsg) {
        let port = self.fabric.as_mut().expect("remote flow without fabric");
        let seq = port.wire_seq;
        port.wire_seq += 1;
        port.outbox.push(Envelope {
            fire: fire + port.latency,
            src_host: port.host_id,
            seq,
            dst_host,
            msg,
        });
    }

    /// Suppress fault windows that have not yet opened (campaign bisect's
    /// counterfactual replay: "what would this run have done without the
    /// fault?"). Windows already open keep their scheduled closing edge.
    /// Transient: the flag is never serialized, so a checkpoint saved
    /// after suppression restores with faults active again.
    pub fn suppress_faults(&mut self) {
        self.faults_suppressed = true;
    }

    /// Begin measurement (discard warm-up counts). Also baselines the
    /// counter registry so `since_baseline` reports the measurement
    /// interval, mirroring the headline metrics.
    pub fn arm_metrics(&mut self, now: SimTime) {
        self.metrics.arm(now);
        self.nic.input.reset_peak();
        self.rtx_base = self.flows.iter().map(|f| f.stats().retransmits).sum();
        self.timeout_base = self.flows.iter().map(|f| f.stats().timeouts).sum();
        if !self.cfg.faults.is_empty() {
            // Recovery goodput is measured over the same interval as the
            // headline metrics. Windows already open at arm time carry
            // over (their closing edges must still balance the tracker).
            self.recovery = RecoveryTracker::new();
            for _ in 0..self.faults.open_windows() {
                self.recovery.on_window_start(now.as_nanos());
            }
            self.last_delivered_bytes = 0;
        }
        self.collect_counters();
        self.counters.mark_baseline();
    }

    /// Snapshot metrics at `now`.
    pub fn snapshot(&mut self, now: SimTime) -> RunMetrics {
        // Placeholder receiver slots hold no real window; exclude them so
        // fleet hosts report the mean over transmitting flows (identical
        // accumulation when no remote slots exist).
        let (mut cwnd_sum, mut cwnd_n) = (0.0f64, 0u64);
        for (i, fl) in self.flows.iter().enumerate() {
            if self.is_remote_receiver(i) {
                continue;
            }
            cwnd_sum += fl.cwnd();
            cwnd_n += 1;
        }
        let mean_cwnd = cwnd_sum / cwnd_n as f64;
        let mut m = self
            .metrics
            .snapshot(now, self.nic.input.peak_bytes(), mean_cwnd);
        let rtx_now: u64 = self.flows.iter().map(|f| f.stats().retransmits).sum();
        let to_now: u64 = self.flows.iter().map(|f| f.stats().timeouts).sum();
        m.retransmits = rtx_now - self.rtx_base;
        m.timeouts = to_now - self.timeout_base;
        if !self.cfg.faults.is_empty() {
            m.faults = Some(self.recovery.summarize(&self.faults.counters));
        }
        // Like `faults`: the section exists only when the subsystem ran,
        // so telemetry-off exports stay byte-identical.
        if self.telemetry.is_enabled() {
            m.telemetry = Some(self.telemetry.summary(now.as_nanos()));
        }
        self.collect_counters();
        m
    }

    /// Refresh the counter registry from every datapath component.
    pub fn collect_counters(&mut self) {
        self.counters.collect(&self.nic);
        self.counters.collect(&self.credits);
        self.counters.collect(&self.iommu);
        self.counters.collect(&self.mem);
        let mut agg = FlowStats::default();
        for f in &self.flows {
            agg.absorb(&f.stats());
        }
        self.counters.collect(&agg);
        // Fault counters only exist in the registry when a plan is present:
        // a zero-fault run's counter export must stay byte-identical to a
        // build without the fault layer.
        if !self.cfg.faults.is_empty() {
            self.counters.collect(&self.faults.counters);
            self.counters.collect(&self.replay);
        }
    }

    /// Per-flow progress: (cumulative bytes ACKed at the sender, packets
    /// delivered in order at the receiver). Chaos tests diff two readings
    /// to prove no flow is permanently stalled after a fault window.
    pub fn flow_progress(&self) -> Vec<(u64, u64)> {
        self.flows
            .iter()
            .zip(&self.recv_flows)
            .map(|(s, r)| (s.cum_acked(), r.delivered_packets()))
            .collect()
    }

    // ---- checkpoint/restore ----

    /// Serialize every piece of evolving state into `w`, in declaration
    /// order. Topology, configuration and run constants are *not* written:
    /// the restore path rebuilds them by constructing a testbed from the
    /// identical config (and, in a fleet, replaying the same remote-flow
    /// wiring) before calling [`load_state`](Self::load_state). Derived
    /// caches are recomputed after load, and scratch buffers carry no
    /// state between events at a slot boundary.
    ///
    /// Refuses (with [`SnapError::Unsupported`]) when the tracer or the
    /// timeline recorder is enabled: their in-memory buffers are
    /// diagnostics, not simulation state, and restoring without them
    /// would silently diverge from what the caller asked to record.
    pub fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        if self.tracer.is_enabled() || self.timeline.is_enabled() {
            return Err(SnapError::Unsupported("checkpoint with tracing enabled"));
        }
        self.rng.save_state(w);
        w.usize(self.flows.len());
        for f in &self.flows {
            f.save_state(w);
        }
        w.usize(self.sender_links.len());
        for l in &self.sender_links {
            l.save_state(w);
        }
        for rf in &self.recv_flows {
            rf.save_state(w);
        }
        for ch in &self.rpc {
            ch.save_state(w);
        }
        // Remote slots and the fabric attachment are topology; only their
        // shape is written so a mis-wired restore fails typed, plus the
        // fabric's evolving payload (sequence counter + staged messages).
        w.usize(self.remote.len());
        w.opt(&self.fabric, |port, w| {
            w.u64(port.wire_seq);
            w.usize(port.outbox.len());
            for env in &port.outbox {
                w.time(env.fire);
                w.u32(env.src_host);
                w.u64(env.seq);
                w.u32(env.dst_host);
                env.msg.save_state(w);
            }
            w.usize(port.inbox.len());
            for msg in &port.inbox {
                msg.save_state(w);
            }
        });
        self.switch.save_state(w);
        self.store.save_with(w, |p, w| p.save_state(w));
        self.dma.save_with(w, |j, w| j.save_state(w));
        self.nic.save_state(w);
        self.iommu.save_state(w);
        self.mem.save_state(w);
        self.antagonist.save_state(w);
        self.credits.save_state(w);
        self.pcie_pipe.save_state(w);
        self.mem_pipe.save_state(w);
        for p in &self.pools {
            p.save_state(w);
        }
        w.seq(&self.core_free_at, |&t, w| w.time(t));
        w.usize(self.ring_cursor.len());
        for cur in &self.ring_cursor {
            for &c in cur {
                w.u64(c);
            }
        }
        w.u64(self.window_payload);
        w.u64(self.window_walks);
        w.time(self.last_tick);
        self.nic_demand.save_state(w);
        self.app_demand.save_state(w);
        w.f64(self.ddio_leak);
        w.bool(self.dma_launch_pending);
        w.seq(&self.unfused_inflight, |&n, w| w.u32(n));
        self.launch_trace.save_with(w, |&t, w| w.u32(t));
        w.f64(self.switch_backlog_sum);
        w.f64(self.link_backlog_sum);
        w.u64(self.backlog_samples);
        self.metrics.save_state(w);
        self.counters.save_state(w);
        self.telemetry.save_state(w);
        w.u64(self.rtx_base);
        w.u64(self.timeout_base);
        self.faults.save_state(w);
        self.fault_rng.save_state(w);
        self.replay.save_state(w);
        self.recovery.save_state(w);
        // The cached fault aggregates are serialized directly rather than
        // re-derived: `refresh_fault_aggregates` re-rates the memory pipe,
        // which would perturb the just-restored busy horizon.
        w.bool(self.fault_link_down);
        w.f64(self.fault_nak_rate);
        w.bool(self.fault_refill_stalled);
        w.f64(self.fault_throttle);
        w.seq(&self.fault_pending_refills, |&n, w| w.u32(n));
        w.f64(self.last_nic_avail);
        w.u64(self.last_delivered_bytes);
        Ok(())
    }

    /// Restore evolving state from [`save_state`](Self::save_state) output
    /// into a testbed freshly built from the *identical* configuration
    /// (and identical fleet wiring). Every structural invariant is
    /// revalidated against the prebuilt topology — count mismatches and
    /// out-of-range values are typed errors, never panics.
    ///
    /// On error `self` may be partially overwritten (sub-component loads
    /// are in-place); callers must discard the testbed rather than run it.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.rng = SimRng::load_state(r)?;
        let n_flows = r.len(1)?;
        if n_flows != self.flows.len() {
            return Err(SnapError::Corrupt("flow count mismatch"));
        }
        for f in &mut self.flows {
            f.load_state(r)?;
        }
        let n_links = r.len(1)?;
        if n_links != self.sender_links.len() {
            return Err(SnapError::Corrupt("sender link count mismatch"));
        }
        for l in &mut self.sender_links {
            *l = Link::load_state(r)?;
        }
        for rf in &mut self.recv_flows {
            *rf = ReceiverFlow::load_state(r)?;
        }
        for ch in &mut self.rpc {
            ch.load_state(r)?;
        }
        let n_remote = r.usize()?;
        if n_remote != self.remote.len() {
            return Err(SnapError::Corrupt("remote slot count mismatch"));
        }
        let fabric_payload = r.opt(|r| {
            let wire_seq = r.u64()?;
            let n_out = r.len(1)?;
            let mut outbox = Vec::with_capacity(n_out);
            for _ in 0..n_out {
                outbox.push(Envelope {
                    fire: r.time()?,
                    src_host: r.u32()?,
                    seq: r.u64()?,
                    dst_host: r.u32()?,
                    msg: WireMsg::load_state(r)?,
                });
            }
            let n_in = r.len(1)?;
            let mut inbox = std::collections::VecDeque::with_capacity(n_in);
            for _ in 0..n_in {
                inbox.push_back(WireMsg::load_state(r)?);
            }
            Ok((wire_seq, outbox, inbox))
        })?;
        match (self.fabric.as_mut(), fabric_payload) {
            (Some(port), Some((wire_seq, outbox, inbox))) => {
                port.wire_seq = wire_seq;
                port.outbox = outbox;
                port.inbox = inbox;
            }
            (None, None) => {}
            _ => return Err(SnapError::Corrupt("fabric attachment mismatch")),
        }
        self.switch = SwitchPort::load_state(r)?;
        self.store = PacketStore::load_with(r, hostcc_fabric::Packet::load_state)?;
        self.dma = GenSlab::load_with(r, DmaJob::load_state)?;
        self.nic.load_state(r)?;
        self.iommu.load_state(r)?;
        self.mem.load_state(r)?;
        self.antagonist.load_state(r)?;
        self.credits = CreditState::load_state(r)?;
        self.pcie_pipe = SerialLink::load_state(r)?;
        self.mem_pipe = VariableRateLink::load_state(r)?;
        for p in &mut self.pools {
            *p = RxBufferPool::load_state(r)?;
        }
        let core_free_at = r.seq(8, |r| r.time())?;
        if core_free_at.len() != self.core_free_at.len() {
            return Err(SnapError::Corrupt("receiver core count mismatch"));
        }
        self.core_free_at = core_free_at;
        let n_cursors = r.len(24)?;
        if n_cursors != self.ring_cursor.len() {
            return Err(SnapError::Corrupt("ring cursor count mismatch"));
        }
        for t in 0..n_cursors {
            let mut cur = [0u64; 3];
            for (which, c) in cur.iter_mut().enumerate() {
                *c = r.u64()?;
                if *c >= self.ring_pages[which] {
                    return Err(SnapError::Corrupt("ring cursor out of range"));
                }
            }
            self.ring_cursor[t] = cur;
        }
        self.window_payload = r.u64()?;
        self.window_walks = r.u64()?;
        self.last_tick = r.time()?;
        self.nic_demand = Ewma::load_state(r)?;
        self.app_demand = Ewma::load_state(r)?;
        let ddio_leak = r.f64()?;
        if !(0.0..=1.0).contains(&ddio_leak) {
            return Err(SnapError::Corrupt("ddio leak out of range"));
        }
        self.ddio_leak = ddio_leak;
        self.dma_launch_pending = r.bool()?;
        let unfused = r.seq(4, |r| r.u32())?;
        if unfused.len() != self.unfused_inflight.len() {
            return Err(SnapError::Corrupt("unfused inflight count mismatch"));
        }
        self.unfused_inflight = unfused;
        self.launch_trace = SampleRing::load_with(r, |r| r.u32())?;
        self.switch_backlog_sum = r.f64()?;
        self.link_backlog_sum = r.f64()?;
        self.backlog_samples = r.u64()?;
        if !self.switch_backlog_sum.is_finite() || !self.link_backlog_sum.is_finite() {
            return Err(SnapError::Corrupt("non-finite backlog sum"));
        }
        self.metrics = MetricsCollector::load_state(r)?;
        self.counters = CounterRegistry::load_state(r)?;
        self.telemetry.load_state(r)?;
        self.rtx_base = r.u64()?;
        self.timeout_base = r.u64()?;
        self.faults.load_state(r)?;
        self.fault_rng = SimRng::load_state(r)?;
        self.replay = ReplayChannel::load_state(r)?;
        self.recovery = RecoveryTracker::load_state(r)?;
        self.fault_link_down = r.bool()?;
        let nak_rate = r.f64()?;
        if !(0.0..=1.0).contains(&nak_rate) {
            return Err(SnapError::Corrupt("nak rate out of range"));
        }
        self.fault_nak_rate = nak_rate;
        self.fault_refill_stalled = r.bool()?;
        let throttle = r.f64()?;
        if !throttle.is_finite() || throttle < 0.0 {
            return Err(SnapError::Corrupt("invalid throttle factor"));
        }
        self.fault_throttle = throttle;
        let refills = r.seq(4, |r| r.u32())?;
        if refills.len() != self.fault_pending_refills.len() {
            return Err(SnapError::Corrupt("pending refill count mismatch"));
        }
        self.fault_pending_refills = refills;
        let last_nic_avail = r.f64()?;
        if !last_nic_avail.is_finite() || last_nic_avail < 0.0 {
            return Err(SnapError::Corrupt("invalid nic bandwidth"));
        }
        self.last_nic_avail = last_nic_avail;
        self.last_delivered_bytes = r.u64()?;
        // Derived caches are functions of the restored inputs; recompute
        // rather than trust the snapshot.
        self.refresh_latency_cache();
        Ok(())
    }

    /// Latency charged per page-walk memory access: the memory latency
    /// curve (capped — page-table lines are cache-friendly) times the
    /// IOMMU walker penalty (dependent accesses through the root complex).
    fn walk_access_latency_ns(&mut self) -> f64 {
        let full = self.mem.access_latency_ns();
        let base = self.cfg.memsys.base_latency_ns;
        full.min(base * self.cfg.walk_latency_cap_factor) * self.cfg.walk_access_penalty
    }

    /// Re-derive the cached per-DMA latency terms. Each term is the exact
    /// f64 expression the launch path used to evaluate per packet, and its
    /// inputs change only at memory ticks (demand + DDIO-leak refresh) or
    /// agent registration — so caching them keyed on the memory system's
    /// demand epoch (plus an explicit refresh at the tick, which also
    /// covers a leak-only change) is bit-identical to recomputing.
    fn refresh_latency_cache(&mut self) {
        self.cached_walk_ns = self.walk_access_latency_ns();
        self.cached_commit_ns = self.ddio_leak * self.mem.access_latency_ns()
            + (1.0 - self.ddio_leak) * self.cfg.llc_latency_ns;
        self.cached_read_rt_ns = hostcc_pcie::read_round_trip_ns(
            &self.cfg.pcie,
            &self.cfg.read_channel,
            self.cfg.nic.desc_bytes,
            250.0,
            self.mem.access_latency_ns(),
        ) as u64;
        self.cached_mem_epoch = self.mem.demand_epoch();
    }

    /// Pick the control-structure page a per-packet ring access touches.
    ///
    /// Each ring keeps a hot window of pages that per-packet accesses
    /// cycle through (descriptor prefetch batches, out-of-order
    /// completion retirement). Cyclic reuse is LRU's worst case: below
    /// IOTLB capacity it is free, past capacity it thrashes — which is
    /// what produces the sharp Fig. 3 knee.
    fn ring_page_offset(&mut self, thread: usize, which: usize) -> u64 {
        let pages = self.ring_pages[which];
        let c = self.ring_cursor[thread][which];
        // Wrapping cursor: `c` stays in `[0, pages)`, so the offset
        // sequence is identical to `(count % pages) * 4096` without the
        // per-packet hardware division.
        self.ring_cursor[thread][which] = if c + 1 == pages { 0 } else { c + 1 };
        c * 4096
    }

    // ---- event handlers ----

    /// Schedule a `DmaLaunch` at the current instant unless one is
    /// already pending (coalesced kick; see `dma_launch_pending`).
    fn kick_dma_launch<Q: Queue<Event>>(&mut self, sched: &mut Scheduler<Event, Q>) {
        if !self.dma_launch_pending {
            self.dma_launch_pending = true;
            sched.immediately(Event::DmaLaunch);
        }
    }

    fn handle_try_send<Q: Queue<Event>>(
        &mut self,
        now: SimTime,
        f: u32,
        sched: &mut Scheduler<Event, Q>,
    ) {
        // Bursty workloads: outside the active window, hold transmissions
        // until the next burst begins (all of a host's flows share the
        // pattern, as co-located application phases do).
        if self.cfg.duty_cycle < 1.0 {
            let period = self.cfg.duty_period.as_nanos().max(1);
            let active = (period as f64 * self.cfg.duty_cycle) as u64;
            let phase = now.as_nanos() % period;
            if phase >= active {
                let next_burst = now + SimDuration::from_nanos(period - phase);
                sched.at(next_burst, Event::TrySend(f));
                return;
            }
        }
        let id = self.flow_ids[f as usize];
        match self.flows[f as usize].try_send(now) {
            Ok(seq) => {
                let base = self.base_flows();
                if f >= base {
                    // Cross-host flow: the packet leaves this host
                    // entirely, stamped with the destination-side flow id.
                    // It still serialises through this slot's access link
                    // (so pacing and link contention are modelled), then
                    // crosses the fabric at its minimum latency and joins
                    // the destination's datapath at its incast switch.
                    let RemoteEntry::Sender {
                        dst_host,
                        dst_flow_id,
                    } = self.remote[(f - base) as usize]
                    else {
                        unreachable!("receiver slots never transmit");
                    };
                    let pkt = self.cfg.wire.data_packet(dst_flow_id, seq, now);
                    if self.metrics.armed {
                        self.metrics.data_packets_sent += 1;
                    }
                    let link = &mut self.sender_links[id.sender as usize];
                    let arrive = link.transmit(now, &pkt);
                    let next = link.free_at().max(now);
                    self.queue_remote(arrive, dst_host, WireMsg::Data(pkt));
                    sched.at(next, Event::TrySend(f));
                    return;
                }
                let pkt = self.cfg.wire.data_packet(id, seq, now);
                if self.metrics.armed {
                    self.metrics.data_packets_sent += 1;
                }
                let link = &mut self.sender_links[id.sender as usize];
                let arrive = link.transmit(now, &pkt);
                // The packet enters the store here and is referenced by
                // handle for the rest of its life.
                sched.at(arrive, Event::AtSwitch(self.store.alloc(pkt)));
                // Chain the next attempt at the link's serialisation slot.
                let next = link.free_at().max(now);
                sched.at(next, Event::TrySend(f));
            }
            Err(SendBlocked::PacedUntil(t)) => sched.at(t.max(now), Event::TrySend(f)),
            Err(SendBlocked::WindowLimited) | Err(SendBlocked::DataLimited) => {
                // Woken by the next ACK / frontier advance.
            }
        }
    }

    fn handle_at_switch<Q: Queue<Event>>(
        &mut self,
        now: SimTime,
        pkt: PacketRef,
        sched: &mut Scheduler<Event, Q>,
    ) {
        match self.switch.enqueue(now, self.store.get_mut(pkt)) {
            EnqueueOutcome::DeliverAt(t) => sched.at(t, Event::AtNic(pkt)),
            EnqueueOutcome::Dropped => {
                self.store.free(pkt);
                if self.metrics.armed {
                    self.metrics.drops_fabric += 1;
                }
            }
        }
    }

    fn handle_at_nic<Q: Queue<Event>>(
        &mut self,
        now: SimTime,
        pkt: PacketRef,
        sched: &mut Scheduler<Event, Q>,
    ) {
        // Link-flap blackout: the packet is lost on the wire, so it never
        // arrives at the NIC at all (no wire-byte accounting, no buffer).
        if self.fault_link_down {
            self.store.free(pkt);
            self.faults.counters.link_dropped_packets += 1;
            if self.metrics.armed {
                self.metrics.drops_fabric += 1;
            }
            return;
        }
        let wire_bytes = self.store.get(pkt).wire_bytes;
        if self.metrics.armed {
            self.metrics.nic_arrival_wire_bytes += wire_bytes as u64;
        }
        if self.nic.input.enqueue(now, pkt, wire_bytes) {
            self.kick_dma_launch(sched);
        } else {
            self.store.free(pkt);
            self.nic.stats.drops_buffer_full += 1;
            if self.metrics.armed {
                self.metrics.drops_buffer_full += 1;
            }
            if self.tracer.is_enabled() {
                self.tracer.record(TraceEvent::instant(
                    now.as_nanos(),
                    Stage::NicDropBufferFull,
                ));
            }
        }
    }

    /// Batched NIC arrival: admit a consecutive same-timestamp run of
    /// `AtNic` events in one buffer pass. Exactly equivalent to dispatching
    /// them one by one — admissions, drops, counters and the drop-trace
    /// sequence all follow the run's FIFO order, and the single coalesced
    /// `DmaLaunch` kick lands where the scalar path's first (coalesced)
    /// kick would.
    fn handle_at_nic_run<Q: Queue<Event>>(
        &mut self,
        now: SimTime,
        run: &[Event],
        sched: &mut Scheduler<Event, Q>,
    ) {
        if self.fault_link_down {
            for ev in run {
                let Event::AtNic(pkt) = *ev else {
                    unreachable!()
                };
                self.store.free(pkt);
                self.faults.counters.link_dropped_packets += 1;
                if self.metrics.armed {
                    self.metrics.drops_fabric += 1;
                }
            }
            return;
        }
        let mut arrivals = std::mem::take(&mut self.nic_run_scratch);
        arrivals.clear();
        let mut wire_total = 0u64;
        for ev in run {
            let Event::AtNic(pkt) = *ev else {
                unreachable!()
            };
            let wire_bytes = self.store.get(pkt).wire_bytes;
            wire_total += wire_bytes as u64;
            arrivals.push((pkt, wire_bytes));
        }
        if self.metrics.armed {
            self.metrics.nic_arrival_wire_bytes += wire_total;
        }
        let mut dropped = 0u64;
        let store = &mut self.store;
        let stats = &mut self.nic.stats;
        let tracer = &mut self.tracer;
        let admitted = self.nic.input.enqueue_run(now, &arrivals, |pkt| {
            store.free(pkt);
            stats.drops_buffer_full += 1;
            dropped += 1;
            if tracer.is_enabled() {
                tracer.record(TraceEvent::instant(
                    now.as_nanos(),
                    Stage::NicDropBufferFull,
                ));
            }
        });
        if dropped > 0 && self.metrics.armed {
            self.metrics.drops_buffer_full += dropped;
        }
        if admitted > 0 {
            self.kick_dma_launch(sched);
        }
        self.nic_run_scratch = arrivals;
    }

    fn handle_dma_launch<Q: Queue<Event>>(
        &mut self,
        now: SimTime,
        sched: &mut Scheduler<Event, Q>,
    ) {
        self.dma_launch_pending = false;
        if self.cached_mem_epoch != self.mem.demand_epoch() {
            self.refresh_latency_cache();
        }
        loop {
            if self.nic.input.is_empty() {
                return;
            }
            if !self.credits.can_admit_write(self.pkt_credits) {
                self.credits.note_stall();
                if self.tracer.is_enabled() {
                    self.tracer
                        .record(TraceEvent::instant(now.as_nanos(), Stage::PcieCreditStall));
                }
                return; // retried on the next DmaComplete
            }
            let qp = self.nic.input.dequeue().expect("peeked non-empty");
            let (thread, payload) = {
                let p = self.store.get(qp.pkt);
                (p.flow.thread as usize, p.payload_bytes as u64)
            };
            self.launch_trace.push(thread as u32);

            // Step 2: fetch an Rx descriptor.
            let Some(desc) = self.nic.queues[thread].ring.take() else {
                self.store.free(qp.pkt);
                self.nic.stats.drops_no_descriptor += 1;
                if self.metrics.armed {
                    self.metrics.drops_no_descriptor += 1;
                }
                if self.tracer.is_enabled() {
                    self.tracer.record(TraceEvent::instant(
                        now.as_nanos(),
                        Stage::NicDropNoDescriptor,
                    ));
                }
                continue;
            };
            assert!(self.credits.try_admit_write(self.pkt_credits));

            // Steps 3-5: translate descriptor fetch, payload write and
            // completion write; all contribute IOTLB pressure. Ring
            // accesses land on batched/prefetched (effectively random)
            // pages of their structures.
            let ring_bytes = self.cfg.nic.ring_entries as u64 * self.cfg.nic.desc_bytes;
            let mut cost = hostcc_iommu::TranslationCost::default();
            let desc_off = self.ring_page_offset(thread, 0);
            let desc_iova = self.nic.queues[thread]
                .ring
                .descriptor_iova(0)
                .add(desc_off);
            cost.add(
                self.iommu
                    .translate_range_cost(desc_iova, self.cfg.nic.desc_bytes, PageSize::Size4K)
                    .expect("descriptor mapped"),
            );
            cost.add(
                self.iommu
                    .translate_range_cost(desc.buffer, payload, self.cfg.data_page)
                    .expect("buffer mapped"),
            );
            let cq_off = self.ring_page_offset(thread, 1);
            self.nic.queues[thread].cq.push();
            let cq_base = self.nic.queues[thread]
                .ring
                .descriptor_iova(0)
                .add(ring_bytes);
            cost.add(
                self.iommu
                    .translate_range_cost(
                        cq_base.add(cq_off),
                        self.cfg.nic.cqe_bytes,
                        PageSize::Size4K,
                    )
                    .expect("cq mapped"),
            );

            if self.metrics.armed {
                self.metrics.iotlb_lookups += cost.iotlb_lookups as u64;
                self.metrics.iotlb_misses += cost.iotlb_misses as u64;
                self.metrics.walk_memory_accesses += cost.walk_memory_accesses as u64;
            }
            self.window_walks += cost.walk_memory_accesses as u64;

            // Pipeline: PCIe serialisation, then the memory-bus stage at
            // the NIC's currently-available bandwidth; fixed base latency,
            // serialized page walks and the commit latency ride on top and
            // hold the credits (Little's law).
            let pcie_done = self
                .pcie_pipe
                .transmit(now, self.cfg.pcie.wire_bytes_for(payload));
            // Only the DDIO-leaked share of the write stream occupies the
            // DRAM bus; the rest coalesces in the LLC slice.
            let leaked_bytes = (payload as f64 * self.ddio_leak) as u64;
            let mem_done = self.mem_pipe.transmit(pcie_done, leaked_bytes);
            let walk_ns = cost.walk_memory_accesses as f64 * self.cached_walk_ns;
            // Commit latency: DRAM round-trip for leaked lines, LLC hit
            // for absorbed ones.
            let commit_ns = self.cached_commit_ns;
            // Accumulate the completion delay as three integer-ns stage
            // components (the sum is identical to adding each term to
            // `done` directly, so the decomposition is exact and free).
            let mut pcie_ns =
                pcie_done.saturating_since(now).as_nanos() + self.cfg.dma_base_latency.as_nanos();
            let mem_ns = mem_done.saturating_since(pcie_done).as_nanos() + commit_ns as u64;
            let mut iommu_ns = walk_ns as u64 + cost.lookup_ns;
            if self.cfg.strict_iommu && self.iommu.is_enabled() {
                // Strict mode: the walker interleaves invalidation
                // commands with translations.
                iommu_ns += self.cfg.invalidation_dma_stall.as_nanos();
            }
            if self.cfg.model_dma_read_latency {
                // No descriptor prefetch: the descriptor-fetch DMA read's
                // full PCIe round trip gates the payload write.
                pcie_ns += self.cached_read_rt_ns;
            }
            if self.fault_nak_rate > 0.0 {
                // PCIe link-layer error window: the DLLP layer NAKs this
                // TLP with probability `nak_rate` and the write replays
                // from the replay buffer after a backed-off replay timer.
                if self.fault_rng.next_f64() < self.fault_nak_rate {
                    pcie_ns += self.replay.nak();
                } else {
                    self.replay.ack();
                }
            }
            let done = now + SimDuration::from_nanos(pcie_ns + mem_ns + iommu_ns);

            let job = self.dma.alloc(DmaJob {
                pkt: qp.pkt,
                nic_arrival: qp.arrived,
                buffer: desc.buffer,
                thread: thread as u32,
                admitted: now,
                pcie_ns,
                mem_ns,
                iommu_ns,
            });
            // Chain fusion: when the receiver core is provably idle
            // through the DMA completion (no unfused completion pending
            // on it, and its busy horizon ends by then), reserve the core
            // now and collapse DmaComplete -> CpuDone into one macro
            // event — half the wheel traffic for the uncontended common
            // case. The event queue rounds timestamps up to the run's
            // resolution, so the reservation uses the same quantised
            // instant the macro event will actually dispatch at.
            if self.fuse_active && self.unfused_inflight[thread] == 0 {
                let done_q = self.cfg.resolution.ceil_time(done);
                if self.core_free_at[thread] <= done_q {
                    self.core_free_at[thread] = done_q + self.per_pkt_cost;
                    sched.at(done, Event::DmaChain(job));
                    continue;
                }
            }
            if self.fuse_active {
                self.unfused_inflight[thread] += 1;
            }
            sched.at(done, Event::DmaComplete(job));
        }
    }

    fn handle_dma_complete<Q: Queue<Event>>(
        &mut self,
        now: SimTime,
        job: DmaRef,
        sched: &mut Scheduler<Event, Q>,
    ) {
        self.credits.release_write(self.pkt_credits);
        self.kick_dma_launch(sched);
        self.dma_complete_body(now, job, sched);
    }

    /// The credit-independent tail of a DMA completion: hand the packet to
    /// its receiver core. The batched path releases a whole run's credits
    /// in one update and then replays the bodies in FIFO order.
    fn dma_complete_body<Q: Queue<Event>>(
        &mut self,
        now: SimTime,
        job: DmaRef,
        sched: &mut Scheduler<Event, Q>,
    ) {
        let (pkt, thread) = {
            let j = self.dma.get(job);
            (j.pkt, j.thread as usize)
        };
        self.window_payload += self.store.get(pkt).payload_bytes as u64;
        if self.fuse_active {
            // This job was counted as a fusion blocker at launch; its
            // core claim happens right here, so the thread may fuse again.
            self.unfused_inflight[thread] -= 1;
        }

        // Step 7: a dedicated receiver core processes the packet (strict
        // IOMMU mode adds the unmap/invalidate work to the per-packet
        // cost, precomputed into `per_pkt_cost`).
        let start = now.max(self.core_free_at[thread]);
        let done = start + self.per_pkt_cost;
        self.core_free_at[thread] = done;
        sched.at(done, Event::CpuDone(job));
    }

    /// Fused DMA chain: the DMA retired at `now` and the receiver core —
    /// reserved for this packet at launch — finishes at
    /// `now + per_pkt_cost`. Credits return exactly as a `DmaComplete`
    /// would return them, then the CPU-done tail runs with the reserved
    /// completion instant as its logical timestamp. `core_free_at` was
    /// already advanced at launch and must not be touched here.
    fn handle_dma_chain<Q: Queue<Event>>(
        &mut self,
        now: SimTime,
        job: DmaRef,
        sched: &mut Scheduler<Event, Q>,
    ) {
        self.credits.release_write(self.pkt_credits);
        self.kick_dma_launch(sched);
        self.dma_chain_body(now, job, sched);
    }

    /// The credit-independent tail of a fused chain (the batched path
    /// releases a whole run's credits in one update, then replays these).
    fn dma_chain_body<Q: Queue<Event>>(
        &mut self,
        now: SimTime,
        job: DmaRef,
        sched: &mut Scheduler<Event, Q>,
    ) {
        self.window_payload += self.store.get(self.dma.get(job).pkt).payload_bytes as u64;
        let cpu_done = now + self.per_pkt_cost;
        self.cpu_done_body(cpu_done, job, sched);
    }

    fn handle_cpu_done<Q: Queue<Event>>(
        &mut self,
        now: SimTime,
        job: DmaRef,
        sched: &mut Scheduler<Event, Q>,
    ) {
        self.cpu_done_body(now, job, sched);
    }

    /// Receiver-core completion at logical time `done_at`. Dispatched as
    /// its own `CpuDone` event (`done_at == now`) on the unfused path, or
    /// inline from a fused chain — where the engine clock still reads the
    /// DMA-retire instant and `done_at` is the core's reserved finish
    /// time, strictly in the future. Everything time-stamped here (stage
    /// decomposition, telemetry, the ACK's return-path departure) uses
    /// `done_at`, so both paths agree on when processing finished.
    fn cpu_done_body<Q: Queue<Event>>(
        &mut self,
        done_at: SimTime,
        job: DmaRef,
        sched: &mut Scheduler<Event, Q>,
    ) {
        let now = done_at;
        // The packet's host lifecycle ends here: both slab entries retire
        // (free returns the final value by copy), and only the ACK —
        // allocated below — survives into the return path.
        let job = self.dma.free(job);
        let pkt = self.store.free(job.pkt);
        let f = self.flow_index(pkt.flow) as usize;
        let t = job.thread as usize;

        let (ack_seq, fresh) = self.recv_flows[f].on_data_detailed(pkt.seq);
        if fresh {
            self.nic.stats.delivered_packets += 1;
            self.nic.stats.delivered_payload_bytes += pkt.payload_bytes as u64;
            if self.metrics.armed {
                self.metrics.delivered_packets += 1;
                self.metrics.delivered_payload_bytes += pkt.payload_bytes as u64;
            }
        }
        // Closed-loop RPC: completed reads issue new ones.
        let in_order = self.recv_flows[f].delivered_packets();
        let prev = self.rpc[f].delivered_packets();
        if in_order > prev {
            self.rpc[f].on_delivered(in_order - prev);
        }

        // Strict IOMMU mode: the driver unmaps the consumed buffer, which
        // invalidates its IOTLB entry — the next DMA to this page walks.
        if self.cfg.strict_iommu && self.iommu.is_enabled() {
            self.iommu.invalidate_page(job.buffer, self.cfg.data_page);
        }
        // Free the buffer and replenish the descriptor ring. During a
        // descriptor-stall window the refill is deferred instead: the ring
        // drains, packets drop descriptor-starved, and the backlog posts
        // when the window closes.
        self.pools[t].free(job.buffer);
        if self.fault_refill_stalled {
            self.fault_pending_refills[t] += 1;
            self.faults.counters.deferred_refills += 1;
        } else if self.nic.queues[t].ring.free_slots() > 0 {
            if let Some(b) = self.pools[t].alloc() {
                self.nic.queues[t].ring.post(b);
            }
        }

        // Host delay: NIC arrival -> stack processing done, decomposed
        // exactly into its stages. `admitted` and the three DMA components
        // rode on the job; buffer wait and CPU time fall out of the event
        // times, and the five parts sum to `host_delay` to the nanosecond.
        let host_delay = now.saturating_since(job.nic_arrival);
        let dma_done =
            job.admitted + SimDuration::from_nanos(job.pcie_ns + job.mem_ns + job.iommu_ns);
        let buffer_ns = job.admitted.saturating_since(job.nic_arrival).as_nanos();
        let cpu_ns = now.saturating_since(dma_done).as_nanos();
        if self.telemetry.is_enabled() {
            self.telemetry.on_packet(host_delay.as_nanos(), cpu_ns);
        }
        if self.metrics.armed {
            self.metrics.host_delay.record(host_delay.as_nanos());
            self.metrics.stage_breakdown.record(
                buffer_ns,
                job.pcie_ns,
                job.iommu_ns,
                job.mem_ns,
                cpu_ns,
            );
        }
        if self.tracer.sample() {
            let (flow, thread, seq) = (pkt.flow.sender, job.thread, pkt.seq);
            let t0 = job.admitted.as_nanos();
            self.tracer.record(TraceEvent::span(
                job.nic_arrival.as_nanos(),
                Stage::BufferWait,
                buffer_ns,
                flow,
                thread,
                seq,
            ));
            self.tracer.record(TraceEvent::span(
                t0,
                Stage::PcieTransfer,
                job.pcie_ns,
                flow,
                thread,
                seq,
            ));
            self.tracer.record(TraceEvent::span(
                t0 + job.pcie_ns,
                Stage::IommuTranslate,
                job.iommu_ns,
                flow,
                thread,
                seq,
            ));
            self.tracer.record(TraceEvent::span(
                t0 + job.pcie_ns + job.iommu_ns,
                Stage::MemoryGrant,
                job.mem_ns,
                flow,
                thread,
                seq,
            ));
            self.tracer.record(TraceEvent::span(
                dma_done.as_nanos(),
                Stage::CpuProcess,
                cpu_ns,
                flow,
                thread,
                seq,
            ));
        }

        // ACK: the NIC DMA-reads the ACK from the thread's TX/ACK pool,
        // which cycles through its pages (one more IOTLB access per packet
        // over a multi-page working set).
        let ack_off = self.ring_page_offset(t, 2);
        let ack_cost = self
            .iommu
            .translate_range_cost(
                self.nic.queues[t].ack_buffer.add(ack_off),
                self.cfg.wire.ack_wire_bytes as u64,
                PageSize::Size4K,
            )
            .expect("ack buffer mapped");
        if self.metrics.armed {
            self.metrics.iotlb_lookups += ack_cost.iotlb_lookups as u64;
            self.metrics.iotlb_misses += ack_cost.iotlb_misses as u64;
            self.metrics.walk_memory_accesses += ack_cost.walk_memory_accesses as u64;
        }
        self.window_walks += ack_cost.walk_memory_accesses as u64;

        let mut ack = self.cfg.wire.ack_packet(&pkt, ack_seq, host_delay);
        // Echo the freshest host-congestion signal: the NIC input-buffer
        // occupancy at ACK-generation time (hardware telemetry a
        // host-aware protocol could read; §4's new congestion signal).
        ack.nic_buffer_frac =
            self.nic.input.occupancy_bytes() as f64 / self.nic.input.capacity_bytes() as f64;
        let frontier = self.rpc[f].data_frontier();
        // Return path: receiver uplink + switch + sender downlink are all
        // uncontended; charge propagation + a small fixed processing cost
        // + jitter (engine scheduling noise, ACK coalescing variance).
        let jitter =
            SimDuration::from_nanos(self.rng.next_below(self.cfg.ack_jitter.as_nanos().max(1)));
        let back = self.cfg.hop_propagation * 2 + SimDuration::from_micros(1) + jitter;
        // Anchored at `done_at`, not the engine clock: a fused chain runs
        // this body at the DMA-retire instant but the ACK leaves when the
        // core finishes.
        if f >= self.base_flows() as usize {
            // Cross-host flow: the ACK crosses the fabric back to the
            // paired sender slot, taking the same local return path plus
            // the fabric's minimum latency.
            let RemoteEntry::Receiver { src_host, src_flow } =
                self.remote[f - self.base_flows() as usize]
            else {
                unreachable!("sender slots never receive data");
            };
            self.queue_remote(
                now + back,
                src_host,
                WireMsg::Ack {
                    flow: src_flow,
                    ack,
                    frontier,
                },
            );
            return;
        }
        sched.at(
            now + back,
            Event::AckToSender {
                flow: f as u32,
                ack: self.store.alloc(ack),
                frontier,
            },
        );
    }

    fn handle_ack<Q: Queue<Event>>(
        &mut self,
        now: SimTime,
        f: u32,
        ack: PacketRef,
        frontier: u64,
        sched: &mut Scheduler<Event, Q>,
    ) {
        // The ACK is consumed at the sender; its slab entry retires.
        let ack = self.store.free(ack);
        self.ack_body(now, f, ack, frontier, sched);
    }

    /// ACK consumption at the sender, shared by the local path (after the
    /// store retire above) and the cross-host path (where the ACK arrives
    /// by value, never having entered this host's store).
    fn ack_body<Q: Queue<Event>>(
        &mut self,
        now: SimTime,
        f: u32,
        ack: hostcc_fabric::Packet,
        frontier: u64,
        sched: &mut Scheduler<Event, Q>,
    ) {
        if self.telemetry.is_enabled() {
            // Fabric share of the round trip: RTT minus the echoed host
            // delay. Independent of `metrics.armed`, so the sampler sees
            // warm-up windows too.
            let rtt_ns = now.saturating_since(ack.sent_at).as_nanos();
            self.telemetry
                .on_ack(rtt_ns.saturating_sub(ack.host_delay_echo.as_nanos()));
        }
        if self.metrics.armed {
            let rtt = now.saturating_since(ack.sent_at);
            self.metrics.rtt.record(rtt.as_nanos());
        }
        let flow = &mut self.flows[f as usize];
        flow.on_ack(
            now,
            ack.seq,
            ack.sent_at,
            ack.host_delay_echo,
            ack.ecn_ce,
            ack.nic_buffer_frac,
        );
        flow.set_data_frontier(frontier);
        sched.immediately(Event::TrySend(f));
    }

    /// A cross-host message fires: pop the fabric inbox head (injection
    /// order matches event order — see [`Event::RemoteArrival`]). Data
    /// joins the local datapath at the incast switch, exactly where a
    /// local sender's packet enters; ACKs take the shared consumption
    /// path without a store round-trip.
    fn handle_remote_arrival<Q: Queue<Event>>(
        &mut self,
        now: SimTime,
        sched: &mut Scheduler<Event, Q>,
    ) {
        let msg = self
            .fabric
            .as_mut()
            .expect("RemoteArrival without fabric")
            .inbox
            .pop_front()
            .expect("RemoteArrival without queued message");
        match msg {
            WireMsg::Data(pkt) => {
                let pref = self.store.alloc(pkt);
                self.handle_at_switch(now, pref, sched);
            }
            WireMsg::Ack {
                flow,
                ack,
                frontier,
            } => self.ack_body(now, flow, ack, frontier, sched),
        }
    }

    fn handle_rto_sweep<Q: Queue<Event>>(&mut self, now: SimTime, sched: &mut Scheduler<Event, Q>) {
        for f in 0..self.flows.len() {
            if self.flows[f].check_timeout(now) {
                sched.immediately(Event::TrySend(f as u32));
            }
        }
        sched.after(self.cfg.rto_sweep, Event::RtoSweep);
    }

    /// A fault-plan transition fired: open a window, close one, or run an
    /// in-window tick (IOTLB-storm flush). `code` packs
    /// `(spec_index << 2) | phase`.
    fn handle_fault<Q: Queue<Event>>(
        &mut self,
        now: SimTime,
        code: u32,
        sched: &mut Scheduler<Event, Q>,
    ) {
        let idx = (code >> 2) as usize;
        if self.faults_suppressed && code & 3 == 0 {
            // Counterfactual replay: drop the opening edge entirely. The
            // window never begins, so no closing edge or storm tick is
            // scheduled; windows already open before suppression still
            // close normally through their pre-scheduled end events.
            return;
        }
        match code & 3 {
            0 => {
                // Window opens. The closing edge is scheduled now; at equal
                // timestamps it was inserted before any storm tick, so the
                // wheel dispatches it first and ticks see a closed window.
                let kind = self.faults.begin(idx);
                self.recovery.on_window_start(now.as_nanos());
                self.telemetry.on_fault_window(now.as_nanos());
                let duration = self.faults.spec(idx).duration;
                match kind {
                    FaultKind::IotlbStorm { .. } => {
                        sched.immediately(Event::Fault(code | 2));
                    }
                    FaultKind::CorePreempt { cores } => {
                        // Deschedule the first `cores` receiver threads for
                        // the window: push their busy horizon out to its end.
                        let horizon = now + duration;
                        for t in 0..(cores as usize).min(self.core_free_at.len()) {
                            if self.core_free_at[t] < horizon {
                                let stolen_from = self.core_free_at[t].max(now);
                                self.faults.counters.preempt_ns +=
                                    horizon.saturating_since(stolen_from).as_nanos();
                                self.core_free_at[t] = horizon;
                            }
                        }
                    }
                    FaultKind::MemThrottle { .. } => {
                        self.faults.counters.throttle_windows += 1;
                    }
                    _ => {}
                }
                self.refresh_fault_aggregates(now);
                sched.after(duration, Event::Fault(code | 1));
                if self.tracer.is_enabled() {
                    self.tracer.record(TraceEvent::value(
                        now.as_nanos(),
                        Stage::FaultStart,
                        idx as f64,
                    ));
                }
            }
            1 => {
                let kind = self.faults.end(idx);
                self.recovery.on_window_end(now.as_nanos());
                self.refresh_fault_aggregates(now);
                if matches!(kind, FaultKind::DescriptorStall) && !self.fault_refill_stalled {
                    self.drain_deferred_refills(sched);
                }
                if self.tracer.is_enabled() {
                    self.tracer.record(TraceEvent::value(
                        now.as_nanos(),
                        Stage::FaultEnd,
                        idx as f64,
                    ));
                }
            }
            _ => {
                // Storm tick: flush, then rearm while the window is open.
                if self.faults.is_open(idx) {
                    if self.iommu.is_enabled() {
                        self.iommu.invalidate_all();
                        self.faults.counters.iotlb_flushes += 1;
                    }
                    if let FaultKind::IotlbStorm { flush_period } = self.faults.spec(idx).kind {
                        let period = flush_period.max(SimDuration::from_nanos(1));
                        sched.after(period, Event::Fault(code));
                    }
                }
            }
        }
    }

    /// Recompute the cached hot-path fault aggregates after a window edge.
    fn refresh_fault_aggregates(&mut self, now: SimTime) {
        self.fault_link_down = self.faults.link_down();
        self.fault_nak_rate = self.faults.nak_rate();
        self.fault_refill_stalled = self.faults.refill_stalled();
        let throttle = self.faults.throttle_factor();
        if throttle != self.fault_throttle {
            // Re-rate the memory stage immediately rather than waiting for
            // the next mem tick; the tick will keep it fresh afterwards.
            self.fault_throttle = throttle;
            self.mem_pipe
                .set_rate(now, (self.last_nic_avail * throttle).max(1.0));
        }
    }

    /// Post every refill deferred during a descriptor-stall window.
    fn drain_deferred_refills<Q: Queue<Event>>(&mut self, sched: &mut Scheduler<Event, Q>) {
        let mut posted = false;
        for t in 0..self.fault_pending_refills.len() {
            while self.fault_pending_refills[t] > 0 && self.nic.queues[t].ring.free_slots() > 0 {
                match self.pools[t].alloc() {
                    Some(b) => {
                        self.nic.queues[t].ring.post(b);
                        self.fault_pending_refills[t] -= 1;
                        posted = true;
                    }
                    None => break,
                }
            }
            // Whatever could not be posted (ring full / pool drained) is
            // owed nothing further: the normal per-packet refill path
            // keeps the ring fed from here on.
            self.fault_pending_refills[t] = 0;
        }
        if posted {
            self.kick_dma_launch(sched);
        }
    }

    fn handle_mem_tick<Q: Queue<Event>>(&mut self, now: SimTime, sched: &mut Scheduler<Event, Q>) {
        let dt = now.saturating_since(self.last_tick).as_secs_f64();
        if dt > 0.0 {
            // Measured NIC traffic: payload writes + page-walk reads (64 B
            // lines). The *demand* registered with the controller is
            // anchored at the NIC's line-rate potential: a hardware DMA
            // engine keeps issuing at its credit-limited pace regardless of
            // recent goodput, and anchoring prevents a measured-demand
            // death spiral (delivered rate dips -> controller hands the
            // antagonist more -> rate dips further).
            // DDIO: the fraction of DMA writes (and of the application's
            // copy reads) that actually reach DRAM depends on whether the
            // buffer working set fits the LLC slice.
            let hot_ws: u64 = self.pools.iter().map(|p| p.hot_set_bytes()).sum();
            let ddio_write = self.cfg.ddio.write_traffic_factor(hot_ws);
            let ddio_leak = self.cfg.ddio.leak_fraction(hot_ws);
            self.ddio_leak = ddio_leak;
            let nic_rate =
                (self.window_payload as f64 * ddio_write + self.window_walks as f64 * 64.0) / dt;
            let app_rate =
                self.window_payload as f64 * self.cfg.app_copy_read_fraction * ddio_leak / dt;
            self.nic_demand.record(nic_rate);
            self.app_demand.record(app_rate);
            let nic_potential = (self.cfg.access_link_bps / 8.0).max(self.nic_demand.get());
            self.mem.set_demand(self.nic_agent, nic_potential);
            self.mem.set_demand(self.app_agent, self.app_demand.get());

            // The memory stage of the DMA pipeline drains at whatever the
            // bus leaves for the NIC after CPU-class agents take their
            // (weighted) shares: an idle bus gives DMA its full burst
            // bandwidth, a saturated one squeezes it toward its protected
            // share.
            let capacity = self.cfg.memsys.achievable_bytes_per_sec();
            let cpu_alloc =
                self.antagonist.achieved(&mut self.mem) + self.mem.allocation(self.app_agent);
            let nic_avail = (capacity - cpu_alloc).max(2e9);
            self.last_nic_avail = nic_avail;
            // An open throttle window multiplies the NIC's grant. The
            // guard keeps the zero-fault path free of any f64 op, so its
            // grants stay bit-identical to a build without the fault layer.
            let granted = if self.fault_throttle == 1.0 {
                nic_avail
            } else {
                nic_avail * self.fault_throttle
            };
            self.mem_pipe.set_rate(now, granted);
            // The latency-model inputs (demands, DDIO leak) just changed;
            // re-derive the cached per-DMA terms. Explicit because a
            // leak-only change does not bump the demand epoch.
            self.refresh_latency_cache();

            if self.metrics.armed {
                // Report *measured* traffic (Fig. 6 top panel), not the
                // anchored potential.
                let cpu_side =
                    self.antagonist.achieved(&mut self.mem) + self.mem.allocation(self.app_agent);
                self.metrics.mem_bw_sum += cpu_side + self.nic_demand.get();
                self.metrics.nic_bw_sum += granted;
                self.metrics.mem_bw_samples += 1;
                let since = now.saturating_since(self.metrics.started).as_nanos();
                self.metrics
                    .occupancy_samples
                    .push((since, self.nic.input.occupancy_bytes()));
                self.switch_backlog_sum += self.switch.backlog_delay(now).as_micros_f64();
                self.link_backlog_sum += self
                    .sender_links
                    .iter()
                    .map(|l| l.free_at().saturating_since(now).as_micros_f64())
                    .sum::<f64>()
                    / self.sender_links.len() as f64;
                self.backlog_samples += 1;
            }
            if self.timeline.is_enabled() {
                let t = now.as_nanos();
                self.timeline.offer(
                    "nic.buffer_bytes",
                    t,
                    self.nic.input.occupancy_bytes() as f64,
                );
                self.timeline
                    .offer("nic.mem_bandwidth_bytes_per_sec", t, granted);
                self.timeline.offer(
                    "switch.backlog_us",
                    t,
                    self.switch.backlog_delay(now).as_micros_f64(),
                );
                self.timeline
                    .offer("pcie.credit_stalls", t, self.credits.stalls() as f64);
                let mean_cwnd =
                    self.flows.iter().map(|f| f.cwnd()).sum::<f64>() / self.flows.len() as f64;
                self.timeline.offer("cc.mean_cwnd", t, mean_cwnd);
            }
        }
        // Recovery goodput sampling rides the mem tick: the delivered-byte
        // delta since the last tick is attributed to the before / during /
        // after phase by the tracker's open-window state.
        if !self.cfg.faults.is_empty() && self.metrics.armed {
            let delivered = self.metrics.delivered_payload_bytes;
            let delta = delivered - self.last_delivered_bytes;
            self.last_delivered_bytes = delivered;
            self.recovery.sample(now.as_nanos(), delta);
        }
        self.window_payload = 0;
        self.window_walks = 0;
        self.last_tick = now;
        sched.after(self.cfg.mem_tick, Event::MemTick);
    }

    /// Telemetry sampling tick: read the datapath's gauges and lifetime
    /// counters, hand them to the sampler (which stores per-window
    /// deltas, runs the episode detector and streams to the sink), and
    /// re-arm. Every read is observational — the memory-system calls are
    /// pure memoization — so sampling cannot perturb the run.
    fn handle_telemetry_tick<Q: Queue<Event>>(
        &mut self,
        now: SimTime,
        sched: &mut Scheduler<Event, Q>,
    ) {
        let min_ring_free = self
            .nic
            .queues
            .iter()
            .map(|q| q.ring.free_slots())
            .min()
            .unwrap_or(0);
        let tlb = self.iommu.iotlb_stats();
        let inputs = SignalInputs {
            buffer_occupancy_bytes: self.nic.input.occupancy_bytes(),
            buffer_capacity_bytes: self.nic.input.capacity_bytes(),
            min_ring_free,
            delivered_total: self.nic.stats.delivered_packets,
            drops_total: self.nic.stats.total_drops(),
            credit_stalls_total: self.credits.stalls(),
            iotlb_lookups_total: tlb.lookups,
            iotlb_misses_total: tlb.misses,
            walks_total: self.iommu.stats().walk_memory_accesses,
            mem_util: self.mem.utilization(),
            mem_latency_ns: self.mem.access_latency_ns(),
        };
        self.telemetry.sample(now.as_nanos(), inputs);
        sched.after(
            SimDuration::from_nanos(self.telemetry.interval_ns()),
            Event::TelemetryTick,
        );
    }
}

impl World for Testbed {
    type Event = Event;

    fn handle<Q: Queue<Event>>(
        &mut self,
        now: SimTime,
        event: Event,
        sched: &mut Scheduler<Event, Q>,
    ) {
        match event {
            Event::TrySend(f) => self.handle_try_send(now, f, sched),
            Event::AtSwitch(p) => self.handle_at_switch(now, p, sched),
            Event::AtNic(p) => self.handle_at_nic(now, p, sched),
            Event::DmaLaunch => self.handle_dma_launch(now, sched),
            Event::DmaComplete(j) => self.handle_dma_complete(now, j, sched),
            Event::CpuDone(j) => self.handle_cpu_done(now, j, sched),
            Event::DmaChain(j) => self.handle_dma_chain(now, j, sched),
            Event::AckToSender {
                flow,
                ack,
                frontier,
            } => self.handle_ack(now, flow, ack, frontier, sched),
            Event::RtoSweep => self.handle_rto_sweep(now, sched),
            Event::MemTick => self.handle_mem_tick(now, sched),
            Event::Fault(code) => self.handle_fault(now, code, sched),
            Event::TelemetryTick => self.handle_telemetry_tick(now, sched),
            Event::RemoteArrival => self.handle_remote_arrival(now, sched),
        }
    }

    /// Batched slot dispatch: the engine hands over every event of one
    /// timestamp in wheel FIFO order. Consecutive runs of the two
    /// highest-frequency event kinds take bulk paths — NIC arrivals go
    /// through one buffer pass, DMA completions coalesce their credit
    /// returns — and everything else falls back to the scalar handler in
    /// place. Both bulk paths are exactly order-equivalent to per-event
    /// dispatch (see the goldens in `tests/queue_equivalence.rs`).
    fn handle_batch<Q: Queue<Event>>(
        &mut self,
        now: SimTime,
        events: &mut Vec<Event>,
        sched: &mut Scheduler<Event, Q>,
    ) {
        let mut i = 0;
        while i < events.len() {
            match events[i] {
                Event::AtNic(pkt) => {
                    let start = i;
                    while i < events.len() && matches!(events[i], Event::AtNic(_)) {
                        i += 1;
                    }
                    // Most slots hold one event (1 ns resolution); skip the
                    // run machinery unless there is an actual run.
                    if i - start == 1 {
                        self.handle_at_nic(now, pkt, sched);
                    } else {
                        self.handle_at_nic_run(now, &events[start..i], sched);
                    }
                }
                Event::DmaComplete(job) => {
                    let start = i;
                    while i < events.len() && matches!(events[i], Event::DmaComplete(_)) {
                        i += 1;
                    }
                    if i - start == 1 {
                        self.handle_dma_complete(now, job, sched);
                        continue;
                    }
                    // One bulk credit return + one coalesced kick for the
                    // whole run (the scalar path's per-event kicks after
                    // the first are no-ops anyway), then the per-packet
                    // bodies in FIFO order.
                    self.credits
                        .release_writes(self.pkt_credits, (i - start) as u32);
                    self.kick_dma_launch(sched);
                    for ev in &events[start..i] {
                        let Event::DmaComplete(job) = *ev else {
                            unreachable!()
                        };
                        self.dma_complete_body(now, job, sched);
                    }
                }
                Event::DmaChain(job) => {
                    let start = i;
                    while i < events.len() && matches!(events[i], Event::DmaChain(_)) {
                        i += 1;
                    }
                    if i - start == 1 {
                        self.handle_dma_chain(now, job, sched);
                        continue;
                    }
                    // Same shape as the DmaComplete run: bulk credit
                    // return, one kick, then the fused bodies in order.
                    self.credits
                        .release_writes(self.pkt_credits, (i - start) as u32);
                    self.kick_dma_launch(sched);
                    for ev in &events[start..i] {
                        let Event::DmaChain(job) = *ev else {
                            unreachable!()
                        };
                        self.dma_chain_body(now, job, sched);
                    }
                }
                ev => {
                    i += 1;
                    self.handle(now, ev, sched);
                }
            }
        }
        events.clear();
    }
}

/// A ready-to-run simulation: the engine plus its started world.
/// The simulation is generic over the engine's queue implementation
/// (default: the timing wheel). `Simulation::with_heap_queue` builds the
/// same seeded world on the reference binary-heap queue, which the
/// equivalence tests and the engine benchmark compare against.
pub struct Simulation<Q: Queue<Event> = EventQueue<Event>> {
    engine: Engine<Testbed, Q>,
}

/// Progress watchdog threshold: consecutive same-timestamp dispatches
/// before the engine gives up with [`RunOutcome::Stalled`]. The testbed's
/// legitimate zero-time bursts (DMA launch cascades, ACK fan-out) stay in
/// the hundreds even at full scale; a million same-instant events means
/// the clock has genuinely stopped advancing.
const STALL_LIMIT: u64 = 1_000_000;

impl Simulation {
    /// Build and start a testbed simulation.
    pub fn new(cfg: TestbedConfig) -> Self {
        Self::with_queue(cfg)
    }

    /// Build and start a testbed simulation with tracing installed and
    /// engine wall-clock profiling enabled. The trace layer is purely
    /// observational: a traced run returns bit-identical [`RunMetrics`]
    /// to an untraced one.
    pub fn with_trace(cfg: TestbedConfig, trace: TraceConfig) -> Self {
        let res = cfg.resolution;
        let mut testbed = Testbed::new(cfg);
        testbed.set_trace(trace);
        let mut engine = Engine::with_queue_resolution(testbed, res);
        engine.enable_profiling();
        engine.stall_limit = Some(STALL_LIMIT);
        let Engine { world, sched, .. } = &mut engine;
        world.start(sched);
        Simulation { engine }
    }

    /// Build and start a simulation from an already-constructed testbed.
    /// The fleet builder needs this split: remote flows must be wired
    /// (`enable_fabric` + `add_remote_*`) *before* `start` schedules the
    /// initial send attempts.
    pub fn from_testbed(testbed: Testbed) -> Simulation {
        let res = testbed.config().resolution;
        Simulation::from_testbed_on_queue(testbed, res)
    }

    // ---- checkpoint/restore ----
    //
    // A checkpoint is valid only at a slot boundary: `run_to` leaves the
    // clock exactly at its deadline with every event `<= deadline` already
    // dispatched, so the pending queue, the world and the clock are
    // mutually consistent and a restored run replays bit-identically.

    /// Stable fingerprint of a testbed configuration, written into every
    /// checkpoint so a restore against a different config fails typed
    /// instead of replaying garbage.
    pub fn config_fingerprint(cfg: &TestbedConfig) -> u64 {
        fnv1a_64(format!("{cfg:?}").as_bytes())
    }

    /// Serialize the complete simulation — clock, pending events, world —
    /// into a self-validating envelope (header + checksum). Call only
    /// between [`run_to`](Self::run_to) slices. Refuses (typed, not a
    /// panic) when the tracer or timeline recorder is enabled.
    pub fn save_checkpoint(&self) -> Result<Vec<u8>, SnapError> {
        let mut w = SnapWriter::new();
        w.u64(Self::config_fingerprint(self.engine.world.config()));
        self.engine.sched.save_state(&mut w, |e, w| e.save_state(w));
        self.engine.world.save_state(&mut w)?;
        Ok(w.into_envelope())
    }

    /// Rebuild a simulation from a checkpoint envelope and the identical
    /// configuration the checkpointed run was built from. Single-host
    /// form; fleet hosts go through
    /// [`restore_checkpoint_into`](Self::restore_checkpoint_into) with a
    /// pre-wired testbed.
    pub fn restore_checkpoint(cfg: TestbedConfig, bytes: &[u8]) -> Result<Simulation, SnapError> {
        Self::restore_checkpoint_into(Testbed::new(cfg), bytes)
    }

    /// Rebuild a simulation from a checkpoint envelope into `testbed`,
    /// which must have been constructed from the identical configuration
    /// (and, for fleet hosts, wired with the identical remote flows) but
    /// **not** started — the restored event queue replaces the start-up
    /// schedule wholesale. Any corruption, truncation, version mismatch
    /// or config mismatch is a typed [`SnapError`]; the testbed is
    /// consumed either way.
    pub fn restore_checkpoint_into(
        mut testbed: Testbed,
        bytes: &[u8],
    ) -> Result<Simulation, SnapError> {
        let mut r = SnapReader::open(bytes)?;
        if r.u64()? != Self::config_fingerprint(testbed.config()) {
            return Err(SnapError::Corrupt("config fingerprint mismatch"));
        }
        let sched = Scheduler::load_state(&mut r, Event::load_state)?;
        testbed.load_state(&mut r)?;
        r.finish()?;
        let res = testbed.config().resolution;
        // Build the engine shell, then replace its (empty, unstarted)
        // scheduler with the restored one. `start` must NOT run: the
        // checkpoint's queue already holds the live timers.
        let mut engine = Engine::with_queue_resolution(testbed, res);
        engine.stall_limit = Some(STALL_LIMIT);
        engine.sched = sched;
        Ok(Simulation { engine })
    }
}

impl Simulation<hostcc_sim::BinaryHeapQueue<Event>> {
    /// Build and start a testbed simulation on the reference binary-heap
    /// event queue (equivalence testing and benchmarking only).
    pub fn with_heap_queue(cfg: TestbedConfig) -> Self {
        Self::with_queue(cfg)
    }
}

impl<Q: Queue<Event>> Simulation<Q> {
    /// Build and start a testbed simulation over queue implementation `Q`.
    /// The event queue quantises timestamps to `cfg.resolution` at push,
    /// so coarse-time runs coalesce events onto shared wheel slots no
    /// matter which queue backs the engine.
    pub fn with_queue(cfg: TestbedConfig) -> Self {
        let res = cfg.resolution;
        Self::from_testbed_on_queue(Testbed::new(cfg), res)
    }

    fn from_testbed_on_queue(testbed: Testbed, res: hostcc_sim::Resolution) -> Self {
        let mut engine = Engine::with_queue_resolution(testbed, res);
        engine.stall_limit = Some(STALL_LIMIT);
        let Engine { world, sched, .. } = &mut engine;
        world.start(sched);
        Simulation { engine }
    }

    /// Enable engine wall-clock dispatch profiling (events/sec) without
    /// installing any tracing. Profiling never perturbs the simulation.
    pub fn enable_profiling(&mut self) {
        self.engine.enable_profiling();
    }

    /// Toggle batched slot-drain dispatch (on by default). Per-event and
    /// batched dispatch are bit-for-bit equivalent; the toggle exists for
    /// the equivalence tests and the benchmark's per-event baseline.
    pub fn set_batched(&mut self, on: bool) {
        self.engine.batched = on;
    }

    /// Direct access to the world (inspection in tests/harnesses).
    pub fn world(&self) -> &Testbed {
        &self.engine.world
    }

    /// Mutable access to the world (counter collection, trace control).
    pub fn world_mut(&mut self) -> &mut Testbed {
        &mut self.engine.world
    }

    /// Engine dispatch statistics (Some only after
    /// [`Self::enable_profiling`] / [`Simulation::with_trace`]).
    pub fn profile(&self) -> Option<DispatchProfile> {
        self.engine.profile()
    }

    /// Events dispatched by the engine over the simulation's lifetime.
    pub fn dispatched_total(&self) -> u64 {
        self.engine.sched.dispatched_total()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Advance the simulation by `d` without arming or snapshotting
    /// metrics. For harnesses that need a side-effect-free steady-state
    /// segment — e.g. the allocation-count bench, where armed metrics
    /// would push occupancy samples and pollute the allocator counters.
    pub fn advance(&mut self, d: SimDuration) {
        let t0 = self.engine.now();
        self.engine.run_until(t0 + d);
    }

    /// Run all events with `t <= deadline` (inclusive) and leave the
    /// clock at exactly `deadline` — the epoch-slice primitive the
    /// parallel engine drives. Repeated calls with non-decreasing
    /// deadlines replay exactly what one big `run_until` would have.
    pub fn run_to(&mut self, deadline: SimTime) -> RunOutcome {
        self.engine.run_until(deadline)
    }

    /// Timestamp of the earliest pending event (`None` when idle).
    pub fn peek_time(&self) -> Option<SimTime> {
        self.engine.sched.peek_time()
    }

    /// Schedule `ev` at absolute time `t` (clamped to now, like all
    /// scheduling). The parallel engine injects `RemoteArrival`s here.
    pub fn schedule_at(&mut self, t: SimTime, ev: Event) {
        self.engine.sched.at(t, ev);
    }

    /// Run `warmup` of simulated time to reach steady state, then measure
    /// for `measure` and return the metrics — or a typed error when the
    /// progress watchdog detects a stalled clock. This is the panic-free
    /// entry point `experiment::run` builds on.
    pub fn try_run(
        &mut self,
        warmup: SimDuration,
        measure: SimDuration,
    ) -> Result<RunMetrics, RunError> {
        let t0 = self.engine.now();
        let warm = self.engine.run_until(t0 + warmup);
        self.check_outcome(warm)?;
        let t1 = self.engine.now();
        self.engine.world.arm_metrics(t1);
        let meas = self.engine.run_until(t1 + measure);
        self.check_outcome(meas)?;
        let t2 = self.engine.now();
        Ok(self.engine.world.snapshot(t2))
    }

    fn check_outcome(&mut self, outcome: RunOutcome) -> Result<(), RunError> {
        match outcome {
            RunOutcome::Stalled { at } => {
                let pending = self.engine.sched.pending();
                // Fire the flight recorder (the samples leading into the
                // stall) and carry the final signals on the error itself,
                // so a tripped watchdog is diagnosable without re-running.
                self.engine.world.telemetry.on_stall(at.as_nanos());
                Err(RunError::Stalled {
                    at,
                    pending,
                    host: None,
                    shard: None,
                    telemetry: self.engine.world.telemetry.last_sample().map(Box::new),
                })
            }
            _ => Ok(()),
        }
    }

    /// Run and panic on a watchdog stall (the convenient form for tests
    /// and harnesses that construct configs known to make progress).
    pub fn run(&mut self, warmup: SimDuration, measure: SimDuration) -> RunMetrics {
        self.try_run(warmup, measure)
            .expect("simulation run failed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> TestbedConfig {
        TestbedConfig {
            senders: 4,
            receiver_threads: 2,
            ..TestbedConfig::default()
        }
    }

    #[test]
    fn simulation_moves_data() {
        let mut sim = Simulation::new(small_cfg());
        let m = sim.run(SimDuration::from_millis(2), SimDuration::from_millis(5));
        assert!(m.delivered_packets > 100, "packets {}", m.delivered_packets);
        assert!(
            m.app_throughput_gbps() > 1.0,
            "tp {}",
            m.app_throughput_gbps()
        );
        assert!(m.drops_fabric == 0 || m.drops_fabric < m.delivered_packets / 100);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sim = Simulation::new(small_cfg());
            let m = sim.run(SimDuration::from_millis(1), SimDuration::from_millis(3));
            (
                m.delivered_packets,
                m.delivered_payload_bytes,
                m.host_drops(),
                m.iotlb_misses,
            )
        };
        assert_eq!(run(), run(), "same seed must give identical results");
    }

    #[test]
    fn two_receiver_cores_are_cpu_bound() {
        // With 2 cores at 2.85us/pkt the ceiling is ~2*0.35M pkts/s
        // = ~23 Gbps; the CPU (not the link) must be the bottleneck.
        let mut sim = Simulation::new(TestbedConfig {
            senders: 8,
            receiver_threads: 2,
            ..TestbedConfig::default()
        });
        let m = sim.run(SimDuration::from_millis(10), SimDuration::from_millis(20));
        let tp = m.app_throughput_gbps();
        assert!(
            (14.0..26.0).contains(&tp),
            "2 cores should deliver ~20-23 Gbps, got {tp}"
        );
    }

    #[test]
    fn checkpoint_roundtrip_is_bit_identical() {
        // Uninterrupted run.
        let mut base = Simulation::new(small_cfg());
        let m0 = base.run(SimDuration::from_millis(1), SimDuration::from_millis(2));

        // Same run, checkpointed mid-measurement and restored.
        let mut sim = Simulation::new(small_cfg());
        let t0 = sim.now();
        sim.run_to(t0 + SimDuration::from_millis(1));
        let t1 = sim.now();
        sim.world_mut().arm_metrics(t1);
        sim.run_to(t1 + SimDuration::from_millis(1));
        let bytes = sim.save_checkpoint().unwrap();
        drop(sim);
        let mut back = Simulation::restore_checkpoint(small_cfg(), &bytes).unwrap();
        assert_eq!(back.now(), t1 + SimDuration::from_millis(1));
        back.run_to(t1 + SimDuration::from_millis(2));
        let t2 = back.now();
        let m1 = back.world_mut().snapshot(t2);

        assert_eq!(m0.delivered_packets, m1.delivered_packets);
        assert_eq!(m0.delivered_payload_bytes, m1.delivered_payload_bytes);
        assert_eq!(m0.host_drops(), m1.host_drops());
        assert_eq!(m0.iotlb_misses, m1.iotlb_misses);
        assert_eq!(m0.retransmits, m1.retransmits);
        assert_eq!(m0.host_delay.p99(), m1.host_delay.p99());
        assert_eq!(m0.rtt.p50(), m1.rtt.p50());
        assert_eq!(m0.occupancy_samples, m1.occupancy_samples);
        assert_eq!(m0.mean_cwnd, m1.mean_cwnd);
    }

    #[test]
    fn checkpoint_refused_with_tracing() {
        let mut cfg = small_cfg();
        cfg.senders = 2;
        let sim = Simulation::with_trace(cfg, TraceConfig::enabled(4096));
        assert!(matches!(
            sim.save_checkpoint(),
            Err(hostcc_sim::SnapError::Unsupported(_))
        ));
    }

    #[test]
    fn corrupt_checkpoint_is_typed_error() {
        let mut sim = Simulation::new(small_cfg());
        let t0 = sim.now();
        sim.run_to(t0 + SimDuration::from_millis(1));
        let mut bytes = sim.save_checkpoint().unwrap();
        // Flip a payload byte: checksum must catch it.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(Simulation::restore_checkpoint(small_cfg(), &bytes).is_err());
        bytes[mid] ^= 0x40;
        // Truncation: typed error, not a panic.
        let cut = &bytes[..bytes.len() - 7];
        assert!(Simulation::restore_checkpoint(small_cfg(), cut).is_err());
        // Config mismatch: typed error.
        let other = TestbedConfig {
            senders: 5,
            receiver_threads: 2,
            ..TestbedConfig::default()
        };
        assert!(matches!(
            Simulation::restore_checkpoint(other, &bytes),
            Err(hostcc_sim::SnapError::Corrupt(
                "config fingerprint mismatch"
            ))
        ));
        // Pristine envelope still restores.
        assert!(Simulation::restore_checkpoint(small_cfg(), &bytes).is_ok());
    }

    #[test]
    fn iommu_off_beats_iommu_on_at_many_cores() {
        let mk = |enabled: bool| {
            let mut cfg = TestbedConfig {
                receiver_threads: 14,
                ..TestbedConfig::default()
            };
            cfg.iommu.enabled = enabled;
            let mut sim = Simulation::new(cfg);
            sim.run(SimDuration::from_millis(10), SimDuration::from_millis(20))
        };
        let off = mk(false);
        let on = mk(true);
        assert!(
            on.iotlb_misses_per_packet() > 0.5,
            "misses/pkt {}",
            on.iotlb_misses_per_packet()
        );
        assert!(off.iotlb_misses == 0);
        assert!(
            off.app_throughput_gbps() > on.app_throughput_gbps(),
            "off {} should beat on {}",
            off.app_throughput_gbps(),
            on.app_throughput_gbps()
        );
    }
}

#[cfg(test)]
mod diag {
    use super::*;

    #[test]
    #[ignore]
    fn calib() {
        for threads in [6u32, 8, 10, 12, 14, 16] {
            for (ai, rto_us, ways) in [(0.25, 1000u64, 128usize), (0.15, 1000, 128)] {
                let on = true;
                let mut cfg = TestbedConfig {
                    receiver_threads: threads,
                    ..TestbedConfig::default()
                };
                cfg.iommu.enabled = on;
                cfg.iommu.iotlb_ways = ways;
                cfg.flow.rto_floor = SimDuration::from_micros(rto_us);
                if let crate::config::CcKind::Swift(ref mut sc) = cfg.cc {
                    sc.ai = ai;
                }
                let _ = ai;
                let mut sim = Simulation::new(cfg);
                let m = sim.run(SimDuration::from_millis(25), SimDuration::from_millis(25));
                let (mut fd, mut ed, mut lo) = (0u64, 0u64, 0u64);
                for f in &sim.world().flows {
                    if let Some((a, b, c)) = f.cc().decrease_stats() {
                        fd += a;
                        ed += b;
                        lo += c;
                    }
                }
                let w = sim.world();
                let sb = w.switch_backlog_sum / w.backlog_samples.max(1) as f64;
                let lb = w.link_backlog_sum / w.backlog_samples.max(1) as f64;
                println!(
                    "swq={sb:6.1}us lnkq={lb:6.1}us fabdec={fd} enddec={ed} losses={lo} rtt p50={:5.1} p99={:6.1} thr={threads:2} ai={ai:4.2} rto={rto_us:4} ways={ways} iommu={} tp={:6.2} drop={:6.3}% m/pkt={:5.2} hostd p50={:6.1} p99={:6.1} cwnd={:5.2} rtx={:6} to={:4} peak={:7}",
                    m.rtt.p50() as f64 / 1000.0,
                    m.rtt.p99() as f64 / 1000.0,
                    on as u8,
                    m.app_throughput_gbps(),
                    m.drop_rate() * 100.0,
                    m.iotlb_misses_per_packet(),
                    m.host_delay_p50_us(),
                    m.host_delay_p99_us(),
                    m.mean_cwnd,
                    m.retransmits,
                    m.timeouts,
                    m.nic_buffer_peak_bytes,
                );
            }
        }
    }

    #[test]
    #[ignore]
    fn trace_pattern() {
        let mut cfg = TestbedConfig {
            receiver_threads: 16,
            ..TestbedConfig::default()
        };
        cfg.iommu.iotlb_ways = 128;
        let mut sim = Simulation::new(cfg);
        sim.run(SimDuration::from_millis(40), SimDuration::from_millis(5));
        {
            let w = sim.world();
            let threads = w.cfg.receiver_threads as usize;
            let mut cw = vec![0.0f64; threads];
            let mut cnt = vec![0u32; threads];
            for (i, f) in w.flows.iter().enumerate() {
                let t = w.flow_ids[i].thread as usize;
                cw[t] += f.cwnd();
                cnt[t] += 1;
            }
            let per: Vec<String> = (0..threads)
                .map(|t| format!("{:.2}", cw[t] / cnt[t] as f64))
                .collect();
            println!("mean cwnd per thread: {:?}", per);
        }
        let trace: Vec<u32> = sim.world().launch_trace.iter().copied().collect();
        // Run lengths.
        let mut runs = vec![];
        let mut cur = 1;
        for w in trace.windows(2) {
            if w[0] == w[1] {
                cur += 1;
            } else {
                runs.push(cur);
                cur = 1;
            }
        }
        runs.push(cur);
        let mean_run = runs.iter().sum::<usize>() as f64 / runs.len() as f64;
        // Mean gap between same-thread occurrences.
        let mut last = std::collections::HashMap::new();
        let mut gaps = vec![];
        for (i, &t) in trace.iter().enumerate() {
            if let Some(&p) = last.get(&t) {
                gaps.push(i - p);
            }
            last.insert(t, i);
        }
        gaps.sort();
        println!(
            "trace len={} mean_run={:.2} gap p50={} p90={} p99={}",
            trace.len(),
            mean_run,
            gaps[gaps.len() / 2],
            gaps[gaps.len() * 9 / 10],
            gaps[gaps.len() * 99 / 100]
        );
        // Per-thread share balance.
        let mut counts = [0u32; 16];
        for &t in &trace {
            counts[t as usize] += 1;
        }
        println!("thread counts: {:?}", counts);
    }

    #[test]
    #[ignore]
    fn fig6() {
        for on in [false, true] {
            for cores in [0u32, 1, 2, 4, 6, 8, 10, 12, 14, 15] {
                let mut cfg = TestbedConfig {
                    receiver_threads: 12,
                    antagonist_cores: cores,
                    ..TestbedConfig::default()
                };
                cfg.iommu.enabled = on;
                let mut sim = Simulation::new(cfg);
                let m = sim.run(SimDuration::from_millis(25), SimDuration::from_millis(25));
                println!(
                    "iommu={} antag={cores:2} tp={:6.2} drop={:6.3}% membw={:6.1} GB/s nicbw={:5.1} m/pkt={:4.2} hostd p50={:6.1}",
                    on as u8,
                    m.app_throughput_gbps(),
                    m.drop_rate() * 100.0,
                    m.memory_bandwidth_gbytes(),
                    m.mean_nic_memory_bandwidth / 1e9,
                    m.iotlb_misses_per_packet(),
                    m.host_delay_p50_us(),
                );
            }
        }
    }

    #[test]
    #[ignore]
    fn print_sweep() {
        for threads in [2u32, 6, 8, 10, 12, 14, 16] {
            for enabled in [false, true] {
                let mut cfg = TestbedConfig {
                    receiver_threads: threads,
                    ..TestbedConfig::default()
                };
                cfg.iommu.enabled = enabled;
                let mut sim = Simulation::new(cfg);
                let m = sim.run(SimDuration::from_millis(15), SimDuration::from_millis(25));
                println!(
                    "threads={threads:2} iommu={} tp={:6.2} Gbps drop={:5.3}% m/pkt={:5.2} walks/pkt={:5.2} hostdelay p50={:6.1}us p99={:6.1}us cwnd={:5.2} peakbuf={:7} rtx={}",
                    enabled as u8,
                    m.app_throughput_gbps(),
                    m.drop_rate() * 100.0,
                    m.iotlb_misses_per_packet(),
                    m.walk_memory_accesses as f64 / m.delivered_packets.max(1) as f64,
                    m.host_delay_p50_us(),
                    m.host_delay_p99_us(),
                    m.mean_cwnd,
                    m.nic_buffer_peak_bytes,
                    m.retransmits,
                );
            }
        }
    }
}
