//! The congestion-control interface.
//!
//! A congestion controller turns per-ACK feedback (RTT, receiver host-delay
//! echo, ECN) into a congestion window and a pacing rate. The host-side
//! sender machinery (`flow.rs`) is controller-agnostic so Swift, the
//! DCTCP-like baseline and the fixed-window control can be swapped per
//! experiment.

use hostcc_sim::{SimDuration, SimTime};

/// Feedback delivered to the controller for each ACK.
#[derive(Debug, Clone, Copy)]
pub struct AckSample {
    /// Arrival time of the ACK at the sender.
    pub now: SimTime,
    /// Measured round-trip time (ACK arrival − data transmit timestamp).
    pub rtt: SimDuration,
    /// Receiver host delay echoed in the ACK (NIC arrival → stack done).
    pub host_delay: SimDuration,
    /// ECN congestion-experienced echo.
    pub ecn_ce: bool,
    /// NIC input-buffer occupancy fraction echoed by the receiver
    /// (0.0–1.0); the §4 "outside the network" signal. Legacy controllers
    /// ignore it.
    pub nic_buffer_frac: f64,
    /// Packets newly acknowledged by this ACK.
    pub newly_acked: u64,
}

/// Loss events reported to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossKind {
    /// Loss inferred from duplicate/selective ACK information.
    FastRetransmit,
    /// Retransmission timeout fired.
    Timeout,
}

/// A congestion-control algorithm.
///
/// `Send` is required so a `Testbed` (which boxes its controllers) can be
/// moved onto a parallel-engine worker thread.
pub trait CongestionControl: Send {
    /// Process ACK feedback.
    fn on_ack(&mut self, sample: AckSample);

    /// Process a loss event.
    fn on_loss(&mut self, now: SimTime, kind: LossKind);

    /// Current congestion window in packets. May be fractional; values
    /// below 1.0 mean "send less than one packet per RTT" (enforced via
    /// pacing).
    fn cwnd(&self) -> f64;

    /// Minimum spacing between packet transmissions at the current window
    /// and `rtt` estimate. `None` means window-limited only (no pacing).
    fn pacing_interval(&self, rtt: SimDuration) -> Option<SimDuration> {
        let w = self.cwnd();
        if w >= 1.0 {
            None
        } else {
            // One packet per rtt/cwnd.
            Some(SimDuration::from_nanos(
                (rtt.as_nanos() as f64 / w.max(1e-3)) as u64,
            ))
        }
    }

    /// Human-readable algorithm name (reports/plots).
    fn name(&self) -> &'static str;

    /// Optional diagnostic counters: (fabric decreases, endpoint
    /// decreases, losses) for delay-based controllers. `None` for
    /// controllers without that decomposition.
    fn decrease_stats(&self) -> Option<(u64, u64, u64)> {
        None
    }

    /// Serialize the controller's evolving state (windows, per-round
    /// accounting, counters). Stateless controllers keep the default no-op.
    fn save_state(&self, _w: &mut hostcc_sim::SnapWriter) {}

    /// Restore evolving state into a controller rebuilt from the same
    /// configuration. Implementations must fully decode before mutating
    /// `self`, so an error leaves the controller untouched.
    fn load_state(
        &mut self,
        _r: &mut hostcc_sim::SnapReader<'_>,
    ) -> Result<(), hostcc_sim::SnapError> {
        Ok(())
    }
}

/// Smoothed RTT estimate (EWMA with the classic 1/8 gain) shared by
/// senders for pacing and RTO computation.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    min_rtt: SimDuration,
}

impl Default for RttEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl RttEstimator {
    /// A fresh estimator with no samples.
    pub fn new() -> Self {
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            min_rtt: SimDuration::MAX,
        }
    }

    /// Fold in a new RTT sample (RFC 6298-style smoothing).
    pub fn record(&mut self, rtt: SimDuration) {
        self.min_rtt = self.min_rtt.min(rtt);
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let delta = if rtt > srtt { rtt - srtt } else { srtt - rtt };
                // rttvar = 3/4 rttvar + 1/4 |delta|
                self.rttvar =
                    SimDuration::from_nanos((self.rttvar.as_nanos() * 3 + delta.as_nanos()) / 4);
                // srtt = 7/8 srtt + 1/8 rtt
                self.srtt = Some(SimDuration::from_nanos(
                    (srtt.as_nanos() * 7 + rtt.as_nanos()) / 8,
                ));
            }
        }
    }

    /// Smoothed RTT; falls back to `default` before the first sample.
    pub fn srtt_or(&self, default: SimDuration) -> SimDuration {
        self.srtt.unwrap_or(default)
    }

    /// Lowest RTT ever observed (propagation estimate).
    pub fn min_rtt(&self) -> SimDuration {
        if self.min_rtt == SimDuration::MAX {
            SimDuration::ZERO
        } else {
            self.min_rtt
        }
    }

    /// Serialize the estimator (smoothed RTT, variance, observed minimum).
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        w.opt(&self.srtt, |d, w| w.duration(*d));
        w.duration(self.rttvar);
        w.duration(self.min_rtt);
    }

    /// Rebuild an estimator from [`save_state`](Self::save_state) output.
    pub fn load_state(r: &mut hostcc_sim::SnapReader<'_>) -> Result<Self, hostcc_sim::SnapError> {
        Ok(RttEstimator {
            srtt: r.opt(|r| r.duration())?,
            rttvar: r.duration()?,
            min_rtt: r.duration()?,
        })
    }

    /// Retransmission timeout: `srtt + 4·rttvar`, floored.
    pub fn rto(&self, floor: SimDuration) -> SimDuration {
        match self.srtt {
            None => floor,
            Some(srtt) => {
                let rto = srtt + self.rttvar * 4;
                if rto > floor {
                    rto
                } else {
                    floor
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Stub(f64);
    impl CongestionControl for Stub {
        fn on_ack(&mut self, _s: AckSample) {}
        fn on_loss(&mut self, _n: SimTime, _k: LossKind) {}
        fn cwnd(&self) -> f64 {
            self.0
        }
        fn name(&self) -> &'static str {
            "stub"
        }
    }

    #[test]
    fn pacing_only_below_one_packet_window() {
        let big = Stub(8.0);
        assert_eq!(big.pacing_interval(SimDuration::from_micros(50)), None);
        let small = Stub(0.5);
        let iv = small.pacing_interval(SimDuration::from_micros(50)).unwrap();
        // One packet per 100 us at cwnd 0.5 and RTT 50 us.
        assert_eq!(iv, SimDuration::from_micros(100));
    }

    #[test]
    fn rtt_estimator_first_sample_adopted() {
        let mut e = RttEstimator::new();
        assert_eq!(
            e.srtt_or(SimDuration::from_micros(1)),
            SimDuration::from_micros(1)
        );
        e.record(SimDuration::from_micros(40));
        assert_eq!(e.srtt_or(SimDuration::ZERO), SimDuration::from_micros(40));
        assert_eq!(e.min_rtt(), SimDuration::from_micros(40));
    }

    #[test]
    fn rtt_estimator_smooths_and_tracks_min() {
        let mut e = RttEstimator::new();
        e.record(SimDuration::from_micros(40));
        for _ in 0..100 {
            e.record(SimDuration::from_micros(80));
        }
        let srtt = e.srtt_or(SimDuration::ZERO).as_micros_f64();
        assert!((srtt - 80.0).abs() < 1.0, "converged srtt {srtt}");
        assert_eq!(e.min_rtt(), SimDuration::from_micros(40));
    }

    #[test]
    fn rto_has_floor_and_grows_with_variance() {
        let mut e = RttEstimator::new();
        let floor = SimDuration::from_millis(1);
        assert_eq!(e.rto(floor), floor);
        // Highly variable RTTs push the RTO above the floor.
        for i in 0..50 {
            e.record(SimDuration::from_micros(if i % 2 == 0 { 100 } else { 900 }));
        }
        assert!(e.rto(SimDuration::from_micros(10)) > SimDuration::from_micros(500));
    }
}
