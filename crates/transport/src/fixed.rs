//! A fixed-window "controller": no reaction to anything.
//!
//! Used for calibration (what does the datapath do at a known offered
//! load?) and as the straw-man showing what happens with no congestion
//! control at all.

use crate::cc::{AckSample, CongestionControl, LossKind};
use hostcc_sim::SimTime;

/// Constant-window pseudo-controller.
#[derive(Debug, Clone)]
pub struct FixedWindow {
    cwnd: f64,
}

impl FixedWindow {
    /// A window fixed at `cwnd` packets forever.
    pub fn new(cwnd: f64) -> Self {
        assert!(cwnd > 0.0, "window must be positive");
        FixedWindow { cwnd }
    }
}

impl CongestionControl for FixedWindow {
    fn on_ack(&mut self, _sample: AckSample) {}
    fn on_loss(&mut self, _now: SimTime, _kind: LossKind) {}
    fn cwnd(&self) -> f64 {
        self.cwnd
    }
    fn name(&self) -> &'static str {
        "fixed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostcc_sim::SimDuration;

    #[test]
    fn window_never_moves() {
        let mut f = FixedWindow::new(16.0);
        f.on_ack(AckSample {
            now: SimTime::from_micros(1),
            rtt: SimDuration::from_millis(10),
            host_delay: SimDuration::from_millis(9),
            ecn_ce: true,
            nic_buffer_frac: 0.9,
            newly_acked: 5,
        });
        f.on_loss(SimTime::from_micros(2), LossKind::Timeout);
        assert_eq!(f.cwnd(), 16.0);
        assert_eq!(f.name(), "fixed");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        let _ = FixedWindow::new(0.0);
    }
}
