//! Transport-layer counters for the workspace counter registry.
//!
//! A testbed runs many flows; callers sum per-flow [`FlowStats`] into one
//! aggregate (the fields are plain `u64`s) and collect that.

use crate::flow::FlowStats;
use hostcc_trace::{CounterRegistry, CounterSource};

impl FlowStats {
    /// Accumulate another flow's stats into this aggregate.
    pub fn absorb(&mut self, other: &FlowStats) {
        self.data_sent += other.data_sent;
        self.retransmits += other.retransmits;
        self.acked += other.acked;
        self.fast_retransmits += other.fast_retransmits;
        self.timeouts += other.timeouts;
    }
}

impl CounterSource for FlowStats {
    fn export_counters(&self, reg: &mut CounterRegistry) {
        reg.set("transport.data_sent", self.data_sent);
        reg.set("transport.acked", self.acked);
        reg.set("transport.retransmits", self.retransmits);
        reg.set("transport.fast_retransmits", self.fast_retransmits);
        reg.set("transport.timeouts", self.timeouts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_flow_stats_export() {
        let mut agg = FlowStats::default();
        agg.absorb(&FlowStats {
            data_sent: 10,
            retransmits: 1,
            acked: 9,
            fast_retransmits: 1,
            timeouts: 0,
        });
        agg.absorb(&FlowStats {
            data_sent: 5,
            retransmits: 0,
            acked: 5,
            fast_retransmits: 0,
            timeouts: 2,
        });
        let mut reg = CounterRegistry::new();
        reg.collect(&agg);
        assert_eq!(reg.lifetime("transport.data_sent"), 15);
        assert_eq!(reg.lifetime("transport.timeouts"), 2);
    }
}
