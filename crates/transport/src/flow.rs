//! Per-flow sender and receiver reliability machinery.
//!
//! `SenderFlow` owns one connection's send side: sequence numbers,
//! in-flight tracking, duplicate-ACK fast retransmit, go-back-N timeout
//! recovery, pacing when the window is fractional, and the hand-off of ACK
//! feedback to the pluggable congestion controller. `ReceiverFlow` is the
//! receive side: in-order delivery tracking and cumulative ACK generation.

use crate::cc::{AckSample, CongestionControl, LossKind, RttEstimator};
use hostcc_sim::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Reliability parameters.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Initial congestion window handed to the controller, packets.
    pub initial_cwnd: f64,
    /// Lower bound on the retransmission timeout.
    pub rto_floor: SimDuration,
    /// Duplicate ACKs that trigger a fast retransmit.
    pub dupack_threshold: u32,
    /// NewReno-style partial-ACK retransmission (RFC 6582): during loss
    /// recovery, an ACK that advances `cum_acked` but stops short of the
    /// recovery point marks the new head-of-line packet lost too, and it
    /// is retransmitted immediately — with the allowance doubling per
    /// round, as slow start would — instead of waiting a full RTO per
    /// packet. Off by default to preserve the calibrated baseline loss
    /// behaviour; chaos scenarios enable it so whole-window losses (link
    /// blackouts) recover at ACK-clock speed.
    pub partial_ack_rtx: bool,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            initial_cwnd: 8.0,
            rto_floor: SimDuration::from_millis(1),
            dupack_threshold: 3,
            partial_ack_rtx: false,
        }
    }
}

/// Lifetime counters for one flow.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlowStats {
    /// Data packets transmitted (including retransmissions).
    pub data_sent: u64,
    /// Retransmissions among those.
    pub retransmits: u64,
    /// Packets newly acknowledged.
    pub acked: u64,
    /// Fast-retransmit events.
    pub fast_retransmits: u64,
    /// Timeout events.
    pub timeouts: u64,
}

/// Why the sender cannot transmit right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendBlocked {
    /// In-flight packets fill the congestion window.
    WindowLimited,
    /// Pacing (fractional window): retry at the given time.
    PacedUntil(SimTime),
    /// The application has no more data to send (closed-loop RPC limit).
    DataLimited,
}

// Note on Karn's rule: every transmission (including retransmissions)
// carries its own fresh timestamp that the receiver echoes, so RTT samples
// are unambiguous and no retransmission flag is needed.
//
// In-flight tracking is a ring keyed by sequence number, not an ordered
// map: sequences are dense (every live seq lies in `[base, base + len)`),
// so a `VecDeque<Option<SimTime>>` indexed by `seq - base` gives every
// operation the map supported without per-insert node allocations — the
// ring grows once to the window span and then recycles. `base` advances
// only on a cumulative ACK (`ack_below`), never on `remove`: a removed
// head (fast retransmit / RTO) is re-inserted at the same sequence when
// it retransmits, which would land below `base` if removal trimmed it.
#[derive(Debug, Default)]
struct SentWindow {
    /// Sequence number of `slots[0]`. Always <= every live sequence.
    base: u64,
    slots: VecDeque<Option<SimTime>>,
    live: usize,
}

impl SentWindow {
    fn with_capacity(cap: usize) -> Self {
        SentWindow {
            base: 0,
            slots: VecDeque::with_capacity(cap),
            live: 0,
        }
    }

    fn len(&self) -> usize {
        self.live
    }

    fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Record `seq` as in flight, sent at `sent_at`.
    fn insert(&mut self, seq: u64, sent_at: SimTime) {
        debug_assert!(seq >= self.base, "insert below window base");
        let idx = (seq - self.base) as usize;
        while self.slots.len() <= idx {
            self.slots.push_back(None);
        }
        if self.slots[idx].is_none() {
            self.live += 1;
        }
        self.slots[idx] = Some(sent_at);
    }

    fn contains(&self, seq: u64) -> bool {
        seq >= self.base
            && ((seq - self.base) as usize) < self.slots.len()
            && self.slots[(seq - self.base) as usize].is_some()
    }

    /// Remove `seq` if in flight. Does not advance `base` (see above).
    fn remove(&mut self, seq: u64) -> bool {
        if !self.contains(seq) {
            return false;
        }
        self.slots[(seq - self.base) as usize] = None;
        self.live -= 1;
        true
    }

    /// Remove every in-flight sequence below `ack_seq` (cumulative ACK),
    /// returning how many were removed, and advance `base` to `ack_seq`.
    fn ack_below(&mut self, ack_seq: u64) -> u64 {
        let mut newly = 0u64;
        while self.base < ack_seq {
            match self.slots.pop_front() {
                Some(slot) => {
                    if slot.is_some() {
                        self.live -= 1;
                        newly += 1;
                    }
                    self.base += 1;
                }
                None => {
                    // Window exhausted: nothing at or past base was live.
                    self.base = ack_seq;
                    break;
                }
            }
        }
        newly
    }

    /// Smallest in-flight sequence.
    fn head_seq(&self) -> Option<u64> {
        self.slots
            .iter()
            .position(|s| s.is_some())
            .map(|i| self.base + i as u64)
    }

    /// Earliest transmission time among in-flight packets.
    fn oldest_sent_at(&self) -> Option<SimTime> {
        self.slots.iter().filter_map(|s| *s).min()
    }

    /// Restart the timer on every in-flight packet.
    fn set_all_sent_at(&mut self, now: SimTime) {
        for slot in self.slots.iter_mut() {
            if slot.is_some() {
                *slot = Some(now);
            }
        }
    }

    fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        w.u64(self.base);
        w.usize(self.slots.len());
        for slot in &self.slots {
            w.opt(slot, |t, w| w.time(*t));
        }
    }

    fn load_state(r: &mut hostcc_sim::SnapReader<'_>) -> Result<Self, hostcc_sim::SnapError> {
        let base = r.u64()?;
        let n = r.len(1)?;
        let mut slots = VecDeque::with_capacity(n.max(64));
        let mut live = 0usize;
        for _ in 0..n {
            let slot = r.opt(|r| r.time())?;
            if slot.is_some() {
                live += 1;
            }
            slots.push_back(slot);
        }
        Ok(SentWindow { base, slots, live })
    }
}

/// Send side of one connection.
pub struct SenderFlow {
    cc: Box<dyn CongestionControl>,
    /// Shared RTT estimator (pacing + RTO).
    pub rtt: RttEstimator,
    cfg: FlowConfig,
    next_new_seq: u64,
    cum_acked: u64,
    outstanding: SentWindow,
    rtx_queue: VecDeque<u64>,
    dup_acks: u32,
    recovery_end: u64,
    /// Next candidate for a partial-ACK retransmission in the current
    /// recovery episode (never re-queues a sequence already retransmitted
    /// this episode).
    rtx_next: u64,
    data_frontier: u64,
    next_pace_at: SimTime,
    /// Consecutive timeouts without an intervening new ACK (exponential
    /// RTO backoff, capped).
    backoff: u32,
    stats: FlowStats,
}

impl std::fmt::Debug for SenderFlow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SenderFlow")
            .field("cc", &self.cc.name())
            .field("cwnd", &self.cc.cwnd())
            .field("next_new_seq", &self.next_new_seq)
            .field("cum_acked", &self.cum_acked)
            .field("inflight", &self.outstanding.len())
            .finish()
    }
}

impl SenderFlow {
    /// A flow using the given controller.
    pub fn new(cfg: FlowConfig, cc: Box<dyn CongestionControl>) -> Self {
        SenderFlow {
            cc,
            rtt: RttEstimator::new(),
            cfg,
            next_new_seq: 0,
            cum_acked: 0,
            // Pre-sized to a typical window span; both grow once to the
            // flow's actual span and then recycle without allocating.
            outstanding: SentWindow::with_capacity(64),
            rtx_queue: VecDeque::with_capacity(32),
            dup_acks: 0,
            recovery_end: 0,
            rtx_next: 0,
            data_frontier: u64::MAX,
            next_pace_at: SimTime::ZERO,
            backoff: 0,
            stats: FlowStats::default(),
        }
    }

    /// Packets currently in flight.
    pub fn inflight(&self) -> usize {
        self.outstanding.len()
    }

    /// Congestion window, packets.
    pub fn cwnd(&self) -> f64 {
        self.cc.cwnd()
    }

    /// The controller (for algorithm-specific inspection).
    pub fn cc(&self) -> &dyn CongestionControl {
        self.cc.as_ref()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> FlowStats {
        self.stats
    }

    /// Highest sequence the application allows (closed-loop RPC frontier);
    /// new packets with `seq >= frontier` are data-limited.
    pub fn set_data_frontier(&mut self, frontier: u64) {
        self.data_frontier = frontier;
    }

    /// Cumulative acknowledged sequence (next expected by the receiver).
    pub fn cum_acked(&self) -> u64 {
        self.cum_acked
    }

    /// Try to emit one packet at `now`. On success returns the sequence
    /// number to put on the wire (caller builds the packet).
    pub fn try_send(&mut self, now: SimTime) -> Result<u64, SendBlocked> {
        // Retransmissions first; they replace lost in-flight packets and
        // are not additionally window-checked.
        while let Some(seq) = self.rtx_queue.front().copied() {
            if seq < self.cum_acked {
                // Stale entry: already acknowledged while queued.
                self.rtx_queue.pop_front();
                continue;
            }
            self.rtx_queue.pop_front();
            self.outstanding.insert(seq, now);
            self.stats.data_sent += 1;
            self.stats.retransmits += 1;
            return Ok(seq);
        }

        if self.next_new_seq >= self.data_frontier {
            return Err(SendBlocked::DataLimited);
        }

        let cwnd = self.cc.cwnd();
        let inflight = self.outstanding.len() as f64;
        if cwnd >= 1.0 {
            if inflight + 1.0 > cwnd.floor().max(1.0) {
                return Err(SendBlocked::WindowLimited);
            }
        } else {
            // Fractional window: at most one packet in flight, paced.
            if inflight >= 1.0 {
                return Err(SendBlocked::WindowLimited);
            }
            if now < self.next_pace_at {
                return Err(SendBlocked::PacedUntil(self.next_pace_at));
            }
            let srtt = self.rtt.srtt_or(SimDuration::from_micros(50));
            if let Some(gap) = self.cc.pacing_interval(srtt) {
                self.next_pace_at = now + gap;
            }
        }

        let seq = self.next_new_seq;
        self.next_new_seq += 1;
        self.outstanding.insert(seq, now);
        self.stats.data_sent += 1;
        Ok(seq)
    }

    /// Process a cumulative ACK (`ack_seq` = receiver's next expected
    /// sequence) carrying the RTT echo and receiver host delay.
    pub fn on_ack(
        &mut self,
        now: SimTime,
        ack_seq: u64,
        data_sent_at: SimTime,
        host_delay: SimDuration,
        ecn_ce: bool,
        nic_buffer_frac: f64,
    ) {
        let newly = self.outstanding.ack_below(ack_seq);
        if ack_seq > self.cum_acked {
            self.cum_acked = ack_seq;
        }

        if newly > 0 {
            self.stats.acked += newly;
            self.dup_acks = 0;
            self.backoff = 0;
            let rtt = now.saturating_since(data_sent_at);
            if !rtt.is_zero() {
                self.rtt.record(rtt);
            }
            self.cc.on_ack(AckSample {
                now,
                rtt,
                host_delay,
                ecn_ce,
                nic_buffer_frac,
                newly_acked: newly,
            });
            if self.cfg.partial_ack_rtx && self.cum_acked < self.recovery_end {
                self.on_partial_ack();
            }
        } else if ack_seq == self.cum_acked && !self.outstanding.is_empty() {
            // Duplicate ACK: the receiver is still waiting for cum_acked.
            self.dup_acks += 1;
            if self.dup_acks >= self.cfg.dupack_threshold && self.cum_acked >= self.recovery_end {
                // Fast retransmit the missing head-of-line packet.
                if self.outstanding.contains(self.cum_acked)
                    && !self.rtx_queue.contains(&self.cum_acked)
                {
                    self.outstanding.remove(self.cum_acked);
                    self.rtx_queue.push_back(self.cum_acked);
                }
                self.recovery_end = self.next_new_seq;
                self.rtx_next = self.cum_acked + 1;
                self.dup_acks = 0;
                self.stats.fast_retransmits += 1;
                self.cc.on_loss(now, LossKind::FastRetransmit);
            }
        }
    }

    /// A partial ACK landed mid-recovery: the sequence the receiver now
    /// waits for was lost in the same event, so queue it (and the next
    /// not-yet-retransmitted one) for immediate retransmission. Queueing
    /// two per partial ACK doubles the retransmission allowance each
    /// round-trip — the slow-start ramp TCP performs after a timeout —
    /// so an entire blacked-out window clears in O(log) round-trips.
    fn on_partial_ack(&mut self) {
        let mut queued = 0;
        let mut seq = self.rtx_next.max(self.cum_acked);
        while queued < 2 && seq < self.recovery_end {
            if self.outstanding.contains(seq) && !self.rtx_queue.contains(&seq) {
                self.outstanding.remove(seq);
                self.rtx_queue.push_back(seq);
                queued += 1;
            }
            seq += 1;
        }
        self.rtx_next = seq;
    }

    /// Earliest transmission time among in-flight packets (RTO anchor).
    fn oldest_sent_at(&self) -> Option<SimTime> {
        self.outstanding.oldest_sent_at()
    }

    /// Fire the retransmission timer if it has expired: the oldest
    /// in-flight packet is presumed lost and queued for retransmission
    /// (TCP-style single-packet RTO), and the timer restarts for the
    /// remaining in-flight packets. Retransmitting the whole window here
    /// (go-back-N) would multiply load exactly when the bottleneck is
    /// overloaded.
    pub fn check_timeout(&mut self, now: SimTime) -> bool {
        let Some(oldest) = self.oldest_sent_at() else {
            return false;
        };
        let rto = self.backed_off_rto();
        if now.saturating_since(oldest) < rto {
            return false;
        }
        let head = self.outstanding.head_seq().expect("non-empty");
        self.outstanding.remove(head);
        if !self.rtx_queue.contains(&head) {
            self.rtx_queue.push_back(head);
        }
        // Timer restart: the rest get a fresh RTO from now.
        self.outstanding.set_all_sent_at(now);
        self.dup_acks = 0;
        self.recovery_end = self.next_new_seq;
        self.rtx_next = head + 1;
        self.backoff = (self.backoff + 1).min(6); // cap at 64x
        self.stats.timeouts += 1;
        self.cc.on_loss(now, LossKind::Timeout);
        true
    }

    /// Current retransmission timeout including exponential backoff
    /// (doubles per consecutive timeout, capped at 64x the base RTO).
    pub fn backed_off_rto(&self) -> SimDuration {
        self.rtt.rto(self.cfg.rto_floor) * (1u64 << self.backoff.min(6))
    }

    /// Next deadline at which `check_timeout` could fire (for scheduling).
    pub fn rto_deadline(&self) -> Option<SimTime> {
        self.oldest_sent_at().map(|t| t + self.backed_off_rto())
    }

    /// Serialize the flow's evolving state, including the boxed congestion
    /// controller (via [`CongestionControl::save_state`]).
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        w.u64(self.next_new_seq);
        w.u64(self.cum_acked);
        self.outstanding.save_state(w);
        w.usize(self.rtx_queue.len());
        for &seq in &self.rtx_queue {
            w.u64(seq);
        }
        w.u32(self.dup_acks);
        w.u64(self.recovery_end);
        w.u64(self.rtx_next);
        w.u64(self.data_frontier);
        w.time(self.next_pace_at);
        w.u32(self.backoff);
        w.u64(self.stats.data_sent);
        w.u64(self.stats.retransmits);
        w.u64(self.stats.acked);
        w.u64(self.stats.fast_retransmits);
        w.u64(self.stats.timeouts);
        self.rtt.save_state(w);
        self.cc.save_state(w);
    }

    /// Restore into a flow rebuilt with the same config and controller
    /// type. All plain fields are decoded before anything is assigned, and
    /// the controller itself restores all-or-nothing, so an error leaves
    /// `self` untouched.
    pub fn load_state(
        &mut self,
        r: &mut hostcc_sim::SnapReader<'_>,
    ) -> Result<(), hostcc_sim::SnapError> {
        use hostcc_sim::SnapError;
        let next_new_seq = r.u64()?;
        let cum_acked = r.u64()?;
        if cum_acked > next_new_seq {
            return Err(SnapError::Corrupt("flow acked beyond sent"));
        }
        let outstanding = SentWindow::load_state(r)?;
        if outstanding.base > next_new_seq {
            return Err(SnapError::Corrupt("sent window beyond frontier"));
        }
        let n = r.len(8)?;
        let mut rtx_queue = VecDeque::with_capacity(n.max(32));
        for _ in 0..n {
            let seq = r.u64()?;
            if seq >= next_new_seq {
                return Err(SnapError::Corrupt("retransmit of unsent data"));
            }
            rtx_queue.push_back(seq);
        }
        let dup_acks = r.u32()?;
        let recovery_end = r.u64()?;
        let rtx_next = r.u64()?;
        let data_frontier = r.u64()?;
        let next_pace_at = r.time()?;
        let backoff = r.u32()?;
        let stats = FlowStats {
            data_sent: r.u64()?,
            retransmits: r.u64()?,
            acked: r.u64()?,
            fast_retransmits: r.u64()?,
            timeouts: r.u64()?,
        };
        let rtt = RttEstimator::load_state(r)?;
        self.cc.load_state(r)?;
        self.next_new_seq = next_new_seq;
        self.cum_acked = cum_acked;
        self.outstanding = outstanding;
        self.rtx_queue = rtx_queue;
        self.dup_acks = dup_acks;
        self.recovery_end = recovery_end;
        self.rtx_next = rtx_next;
        self.data_frontier = data_frontier;
        self.next_pace_at = next_pace_at;
        self.backoff = backoff;
        self.stats = stats;
        self.rtt = rtt;
        Ok(())
    }
}

/// Receive side of one connection: in-order tracking + cumulative ACKs.
///
/// Out-of-order arrivals are tracked as a dense bitmap ring rather than an
/// ordered set: bit `i` of `out_of_order` says whether sequence
/// `expected + i` has arrived. Bit 0 is always clear (an arrival at
/// `expected` advances it immediately), the ring grows once to the flow's
/// reorder span, and draining a filled gap is a pop-front scan — no
/// per-arrival allocation.
#[derive(Debug, Default)]
pub struct ReceiverFlow {
    expected: u64,
    out_of_order: VecDeque<bool>,
    delivered_packets: u64,
    duplicates: u64,
}

impl ReceiverFlow {
    /// A fresh receive state expecting sequence 0.
    pub fn new() -> Self {
        ReceiverFlow {
            expected: 0,
            out_of_order: VecDeque::with_capacity(64),
            delivered_packets: 0,
            duplicates: 0,
        }
    }

    /// Whether `seq > expected` has already arrived out of order.
    fn gap_contains(&self, seq: u64) -> bool {
        let idx = (seq - self.expected) as usize;
        idx < self.out_of_order.len() && self.out_of_order[idx]
    }

    /// Process an arriving data packet; returns the cumulative ACK value
    /// (next expected sequence) to send back, and whether the packet
    /// carried new (non-duplicate) data.
    pub fn on_data_detailed(&mut self, seq: u64) -> (u64, bool) {
        if seq < self.expected || self.gap_contains(seq) {
            self.duplicates += 1;
            return (self.expected, false);
        }
        if seq == self.expected {
            self.expected += 1;
            self.delivered_packets += 1;
            // Shift the bitmap past the delivered head, then drain any
            // contiguous out-of-order run behind it.
            self.out_of_order.pop_front();
            while self.out_of_order.front() == Some(&true) {
                self.out_of_order.pop_front();
                self.expected += 1;
                self.delivered_packets += 1;
            }
        } else {
            let idx = (seq - self.expected) as usize;
            while self.out_of_order.len() <= idx {
                self.out_of_order.push_back(false);
            }
            self.out_of_order[idx] = true;
        }
        (self.expected, true)
    }

    /// Process an arriving data packet; returns the cumulative ACK value.
    pub fn on_data(&mut self, seq: u64) -> u64 {
        self.on_data_detailed(seq).0
    }

    /// Next expected in-order sequence.
    pub fn expected(&self) -> u64 {
        self.expected
    }

    /// In-order packets delivered to the application.
    pub fn delivered_packets(&self) -> u64 {
        self.delivered_packets
    }

    /// Duplicate data packets seen (spurious retransmissions).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Serialize the receive state (expected sequence, reorder bitmap,
    /// delivery counters).
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        w.u64(self.expected);
        w.usize(self.out_of_order.len());
        for &bit in &self.out_of_order {
            w.bool(bit);
        }
        w.u64(self.delivered_packets);
        w.u64(self.duplicates);
    }

    /// Rebuild receive state from [`save_state`](Self::save_state) output.
    pub fn load_state(r: &mut hostcc_sim::SnapReader<'_>) -> Result<Self, hostcc_sim::SnapError> {
        use hostcc_sim::SnapError;
        let expected = r.u64()?;
        let n = r.len(1)?;
        let mut out_of_order = VecDeque::with_capacity(n.max(64));
        for _ in 0..n {
            out_of_order.push_back(r.bool()?);
        }
        if out_of_order.front() == Some(&true) {
            // Bit 0 arriving means `expected` arrived — the receiver would
            // have advanced past it immediately.
            return Err(SnapError::Corrupt("reorder bitmap head set"));
        }
        Ok(ReceiverFlow {
            expected,
            out_of_order,
            delivered_packets: r.u64()?,
            duplicates: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::FixedWindow;

    fn flow(cwnd: f64) -> SenderFlow {
        SenderFlow::new(FlowConfig::default(), Box::new(FixedWindow::new(cwnd)))
    }

    fn ack(f: &mut SenderFlow, now_us: u64, ack_seq: u64) {
        f.on_ack(
            SimTime::from_micros(now_us),
            ack_seq,
            SimTime::from_micros(now_us.saturating_sub(50)),
            SimDuration::from_micros(5),
            false,
            0.0,
        );
    }

    #[test]
    fn window_limits_inflight() {
        let mut f = flow(4.0);
        let t = SimTime::ZERO;
        for i in 0..4 {
            assert_eq!(f.try_send(t), Ok(i));
        }
        assert_eq!(f.try_send(t), Err(SendBlocked::WindowLimited));
        assert_eq!(f.inflight(), 4);
        // An ACK for two packets opens the window again.
        ack(&mut f, 100, 2);
        assert_eq!(f.inflight(), 2);
        assert_eq!(f.try_send(SimTime::from_micros(100)), Ok(4));
        assert_eq!(f.try_send(SimTime::from_micros(100)), Ok(5));
        assert_eq!(
            f.try_send(SimTime::from_micros(100)),
            Err(SendBlocked::WindowLimited)
        );
    }

    #[test]
    fn data_frontier_limits_new_data() {
        let mut f = flow(100.0);
        f.set_data_frontier(3);
        let t = SimTime::ZERO;
        assert!(f.try_send(t).is_ok());
        assert!(f.try_send(t).is_ok());
        assert!(f.try_send(t).is_ok());
        assert_eq!(f.try_send(t), Err(SendBlocked::DataLimited));
        f.set_data_frontier(4);
        assert_eq!(f.try_send(t), Ok(3));
    }

    #[test]
    fn fractional_window_paces() {
        let mut f = flow(0.5);
        let t0 = SimTime::ZERO;
        assert_eq!(f.try_send(t0), Ok(0));
        assert_eq!(f.try_send(t0), Err(SendBlocked::WindowLimited));
        // ACK it; the next send is gated by pacing.
        ack(&mut f, 50, 1);
        match f.try_send(SimTime::from_micros(50)) {
            // First send after ACK may be paced or immediate depending on
            // the pace clock; both are acceptable, but a second immediate
            // send must not happen.
            Ok(_) => {
                assert!(matches!(
                    f.try_send(SimTime::from_micros(50)),
                    Err(SendBlocked::WindowLimited)
                ));
            }
            Err(SendBlocked::PacedUntil(when)) => {
                assert!(when > SimTime::from_micros(50));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cumulative_ack_advances_and_records_rtt() {
        let mut f = flow(10.0);
        for _ in 0..5 {
            f.try_send(SimTime::ZERO).unwrap();
        }
        ack(&mut f, 60, 5);
        assert_eq!(f.inflight(), 0);
        assert_eq!(f.cum_acked(), 5);
        assert_eq!(f.stats().acked, 5);
        assert!(f.rtt.min_rtt() > SimDuration::ZERO);
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit() {
        let mut f = flow(10.0);
        for _ in 0..5 {
            f.try_send(SimTime::ZERO).unwrap();
        }
        // Packet 0 lost; receiver acks "still expecting 0" as 1..4 arrive.
        ack(&mut f, 10, 1); // first real ack: seq 0 delivered? No - use 0.
        let mut g = flow(10.0);
        for _ in 0..5 {
            g.try_send(SimTime::ZERO).unwrap();
        }
        // Receiver got 1,2,3 but not 0: three duplicate ACKs for 0.
        ack(&mut g, 10, 0);
        ack(&mut g, 11, 0);
        ack(&mut g, 12, 0);
        assert_eq!(g.stats().fast_retransmits, 1);
        // The retransmission is offered before any new data.
        assert_eq!(g.try_send(SimTime::from_micros(13)), Ok(0));
        assert_eq!(g.stats().retransmits, 1);
    }

    #[test]
    fn no_second_fast_retransmit_in_same_window() {
        let mut f = flow(10.0);
        for _ in 0..6 {
            f.try_send(SimTime::ZERO).unwrap();
        }
        for i in 0..6 {
            ack(&mut f, 10 + i, 0);
        }
        assert_eq!(f.stats().fast_retransmits, 1, "one recovery per window");
    }

    #[test]
    fn timeout_retransmits_head_and_restarts_timer() {
        let mut f = flow(4.0);
        for _ in 0..4 {
            f.try_send(SimTime::ZERO).unwrap();
        }
        // Before the RTO floor: no timeout.
        assert!(!f.check_timeout(SimTime::from_micros(500)));
        // After: only the head retransmits; the rest keep flying with a
        // restarted timer.
        assert!(f.check_timeout(SimTime::from_millis(2)));
        assert_eq!(f.stats().timeouts, 1);
        assert_eq!(f.inflight(), 3);
        assert_eq!(f.try_send(SimTime::from_millis(2)), Ok(0));
        assert_eq!(f.stats().retransmits, 1);
        // Timer was restarted: no immediate second firing.
        assert!(!f.check_timeout(SimTime::from_millis(2)));
        // It fires again an RTO later; the (still-unacked) retransmitted
        // head is the oldest in-flight packet and retries first.
        assert!(f.check_timeout(SimTime::from_millis(4)));
        assert_eq!(f.try_send(SimTime::from_millis(4)), Ok(0));
    }

    #[test]
    fn stale_retransmissions_are_skipped() {
        let mut f = flow(4.0);
        for _ in 0..2 {
            f.try_send(SimTime::ZERO).unwrap();
        }
        assert!(f.check_timeout(SimTime::from_millis(2)));
        // ACK arrives late, covering the queued retransmission and the
        // still-outstanding packet.
        ack(&mut f, 2100, 2);
        // The queue should skip the stale entry and emit new data instead.
        assert_eq!(f.try_send(SimTime::from_millis(3)), Ok(2));
        assert_eq!(f.stats().retransmits, 0);
    }

    #[test]
    fn rto_backs_off_exponentially_and_resets_on_ack() {
        let mut f = flow(4.0);
        f.try_send(SimTime::ZERO).unwrap();
        assert_eq!(f.backed_off_rto(), SimDuration::from_millis(1));
        // First timeout at 1 ms; second only after 2 more ms; third 4 ms.
        assert!(f.check_timeout(SimTime::from_millis(1)));
        assert_eq!(f.backed_off_rto(), SimDuration::from_millis(2));
        f.try_send(SimTime::from_millis(1)).unwrap(); // retransmit
        assert!(!f.check_timeout(SimTime::from_millis(2)), "backed off");
        assert!(f.check_timeout(SimTime::from_millis(3)));
        assert_eq!(f.backed_off_rto(), SimDuration::from_millis(4));
        // Backoff caps at 64x.
        for i in 0..20 {
            f.try_send(SimTime::from_millis(3 + i)).unwrap_or(0);
            f.check_timeout(SimTime::from_secs(1 + i));
        }
        assert!(f.backed_off_rto() <= SimDuration::from_millis(64));
        // A new ACK resets the backoff (use a tiny RTT sample so the
        // estimator keeps the RTO at its floor).
        f.try_send(SimTime::from_secs(30)).unwrap_or(0);
        let ack_time = SimTime::from_secs(30) + SimDuration::from_micros(50);
        f.on_ack(
            ack_time,
            f.cum_acked() + 1,
            SimTime::from_secs(30),
            SimDuration::ZERO,
            false,
            0.0,
        );
        assert_eq!(f.backed_off_rto(), SimDuration::from_millis(1));
    }

    #[test]
    fn rto_backoff_doubles_per_timeout_and_caps_at_64x() {
        // The backed-off RTO is `base << backoff.min(6)`: 1, 2, 4, 8, 16,
        // 32, 64 ms — then pinned at 64x for every further consecutive
        // timeout. Each step waits exactly the advertised RTO.
        let mut f = flow(4.0);
        let mut t = SimTime::ZERO;
        f.try_send(t).unwrap();
        for step in 0..10u32 {
            let expect = SimDuration::from_millis(1) * (1u64 << step.min(6));
            assert_eq!(f.backed_off_rto(), expect, "before timeout {step}");
            // One instant before the deadline the timer must not fire.
            let early = t + expect - SimDuration::from_nanos(1);
            assert!(!f.check_timeout(early), "fired early at step {step}");
            t += expect;
            assert!(f.check_timeout(t), "timeout {step}");
            f.try_send(t).unwrap(); // retransmit restarts the timer
        }
        assert_eq!(f.backed_off_rto(), SimDuration::from_millis(64));
        assert_eq!(f.stats().timeouts, 10);
    }

    #[test]
    fn dup_acks_do_not_reset_rto_backoff() {
        // Only an ACK covering new data resets the backoff; duplicate
        // ACKs (no progress) must leave the backed-off timer alone.
        let mut f = flow(4.0);
        f.try_send(SimTime::ZERO).unwrap();
        f.try_send(SimTime::ZERO).unwrap();
        assert!(f.check_timeout(SimTime::from_millis(1)));
        assert_eq!(f.backed_off_rto(), SimDuration::from_millis(2));
        for i in 0..2 {
            ack(&mut f, 1100 + i, 0); // duplicate: receiver still at 0
        }
        assert_eq!(
            f.backed_off_rto(),
            SimDuration::from_millis(2),
            "dup ACKs must not reset backoff"
        );
        // New data acknowledged (seq 1, still outstanding): backoff
        // resets to the base RTO.
        ack(&mut f, 1200, 2);
        assert_eq!(f.backed_off_rto(), SimDuration::from_millis(1));
    }

    fn newreno_flow(cwnd: f64) -> SenderFlow {
        let cfg = FlowConfig {
            partial_ack_rtx: true,
            ..FlowConfig::default()
        };
        SenderFlow::new(cfg, Box::new(FixedWindow::new(cwnd)))
    }

    #[test]
    fn partial_acks_drive_recovery_at_ack_clock_speed() {
        // Six packets in flight, all lost (blackout). After the single
        // RTO retransmission, each partial ACK immediately queues the
        // next two lost packets — no further timeouts needed.
        let mut f = newreno_flow(6.0);
        f.set_data_frontier(6);
        for i in 0..6 {
            assert_eq!(f.try_send(SimTime::ZERO), Ok(i));
        }
        assert!(f.check_timeout(SimTime::from_millis(1)));
        assert_eq!(f.try_send(SimTime::from_millis(1)), Ok(0), "RTO head rtx");

        // ACK of seq 0 arrives: partial (recovery point is 6), so seqs 1
        // and 2 are queued and sent back-to-back.
        ack(&mut f, 1100, 1);
        assert_eq!(f.try_send(SimTime::from_micros(1100)), Ok(1));
        assert_eq!(f.try_send(SimTime::from_micros(1100)), Ok(2));
        // The allowance doubles per round: the next partial ACK queues 3
        // and 4, and 3's own ACK queues 5 — never re-queueing 4, which
        // was already retransmitted this episode.
        ack(&mut f, 1200, 2);
        assert_eq!(f.try_send(SimTime::from_micros(1200)), Ok(3));
        assert_eq!(f.try_send(SimTime::from_micros(1200)), Ok(4));
        ack(&mut f, 1300, 3);
        assert_eq!(f.try_send(SimTime::from_micros(1300)), Ok(5));
        assert_eq!(
            f.try_send(SimTime::from_micros(1300)),
            Err(SendBlocked::DataLimited),
            "nothing left to retransmit and frontier reached"
        );
        ack(&mut f, 1400, 6);
        assert_eq!(f.inflight(), 0);
        assert_eq!(f.stats().timeouts, 1, "one RTO clears the whole window");
        assert_eq!(f.stats().retransmits, 6);
    }

    #[test]
    fn partial_ack_rtx_is_off_by_default() {
        // Same blackout with the default config: after the RTO head
        // retransmission, a partial ACK queues nothing — the remaining
        // losses each wait their own timeout (the pinned seed behaviour).
        let mut f = flow(6.0);
        f.set_data_frontier(6);
        for i in 0..6 {
            assert_eq!(f.try_send(SimTime::ZERO), Ok(i));
        }
        assert!(f.check_timeout(SimTime::from_millis(1)));
        assert_eq!(f.try_send(SimTime::from_millis(1)), Ok(0));
        ack(&mut f, 1100, 1);
        assert_eq!(
            f.try_send(SimTime::from_micros(1100)),
            Err(SendBlocked::DataLimited),
            "no partial-ACK retransmission without the flag"
        );
        assert_eq!(f.stats().retransmits, 1);
    }

    #[test]
    fn rto_deadline_tracks_oldest_packet() {
        let mut f = flow(4.0);
        assert_eq!(f.rto_deadline(), None);
        f.try_send(SimTime::from_micros(100)).unwrap();
        let d = f.rto_deadline().unwrap();
        assert_eq!(d, SimTime::from_micros(100) + SimDuration::from_millis(1));
    }

    #[test]
    fn receiver_in_order_stream() {
        let mut r = ReceiverFlow::new();
        assert_eq!(r.on_data(0), 1);
        assert_eq!(r.on_data(1), 2);
        assert_eq!(r.on_data(2), 3);
        assert_eq!(r.delivered_packets(), 3);
        assert_eq!(r.duplicates(), 0);
    }

    #[test]
    fn receiver_reorders_and_fills_gap() {
        let mut r = ReceiverFlow::new();
        assert_eq!(r.on_data(1), 0, "gap: still expecting 0");
        assert_eq!(r.on_data(2), 0);
        assert_eq!(r.on_data(0), 3, "gap filled: jump to 3");
        assert_eq!(r.delivered_packets(), 3);
    }

    #[test]
    fn receiver_flags_duplicates() {
        let mut r = ReceiverFlow::new();
        r.on_data(0);
        assert_eq!(r.on_data(0), 1);
        assert_eq!(r.duplicates(), 1);
        r.on_data(5);
        assert_eq!(r.on_data(5), 1);
        assert_eq!(r.duplicates(), 2);
    }

    /// The sent-window ring must behave exactly like the ordered map it
    /// replaced. Drive both through a seeded random schedule of inserts,
    /// head removals, timer restarts, and cumulative ACKs, comparing every
    /// observable after every step.
    #[test]
    fn sent_window_matches_ordered_map_reference() {
        use std::collections::BTreeMap;
        let mut rng = hostcc_sim::SimRng::new(0x0ACE_D5E0);
        let mut win = SentWindow::with_capacity(4);
        let mut map: BTreeMap<u64, SimTime> = BTreeMap::new();
        let mut next_seq = 0u64;
        let mut acked = 0u64;
        for step in 0..20_000u64 {
            let t = SimTime::from_nanos(step);
            match rng.next_below(10) {
                0..=3 => {
                    // Send new data.
                    win.insert(next_seq, t);
                    map.insert(next_seq, t);
                    next_seq += 1;
                }
                4..=6 => {
                    // Cumulative ACK somewhere in (acked, next_seq]; a
                    // receiver can never ACK data that was not sent.
                    let ack = acked + rng.next_below(next_seq.saturating_sub(acked) + 1);
                    let newly = win.ack_below(ack);
                    let mut ref_newly = 0u64;
                    while let Some((&s, _)) = map.first_key_value() {
                        if s >= ack {
                            break;
                        }
                        map.remove(&s);
                        ref_newly += 1;
                    }
                    assert_eq!(newly, ref_newly, "step {step}");
                    acked = acked.max(ack);
                }
                7 => {
                    // Loss: drop the head and re-send it (RTO path).
                    if let Some(h) = win.head_seq() {
                        assert_eq!(Some(h), map.first_key_value().map(|(&s, _)| s));
                        win.remove(h);
                        map.remove(&h);
                        if rng.chance(0.5) && h >= acked {
                            win.insert(h, t);
                            map.insert(h, t);
                        }
                    }
                }
                8 => {
                    win.set_all_sent_at(t);
                    for v in map.values_mut() {
                        *v = t;
                    }
                }
                _ => {
                    let probe = acked + rng.next_below(8);
                    assert_eq!(win.contains(probe), map.contains_key(&probe), "step {step}");
                }
            }
            assert_eq!(win.len(), map.len(), "step {step}");
            assert_eq!(win.is_empty(), map.is_empty());
            assert_eq!(win.head_seq(), map.first_key_value().map(|(&s, _)| s));
            assert_eq!(win.oldest_sent_at(), map.values().copied().min());
        }
    }

    #[test]
    fn rtx_reinsert_at_window_base_is_allowed() {
        // Fast retransmit re-inserts at exactly seq == cum_acked == base;
        // the ring must not have trimmed past it.
        let mut w = SentWindow::with_capacity(4);
        w.insert(0, SimTime::ZERO);
        w.insert(1, SimTime::ZERO);
        assert_eq!(w.ack_below(0), 0, "dup ACK removes nothing");
        w.remove(0); // queued for fast retransmit
        w.insert(0, SimTime::from_nanos(5)); // the retransmission
        assert!(w.contains(0));
        assert_eq!(w.head_seq(), Some(0));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn receiver_drains_long_reorder_run() {
        let mut r = ReceiverFlow::new();
        // 1..=63 arrive before 0: one gap, then a full drain.
        for s in 1..64 {
            assert_eq!(r.on_data(s), 0);
        }
        assert_eq!(r.on_data(0), 64, "gap fill drains the whole run");
        assert_eq!(r.delivered_packets(), 64);
        assert_eq!(r.duplicates(), 0);
        // Bitmap is fully drained; the stream continues in order.
        assert_eq!(r.on_data(64), 65);
    }
}
