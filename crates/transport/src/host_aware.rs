//! A host-aware congestion controller: §4's proposed directions made
//! concrete.
//!
//! The paper argues future protocols need (a) congestion signals from
//! *outside* the network — CPU utilisation, memory contention, NIC buffer
//! state — and (b) *sub-RTT* response, because with terabit links and
//! stagnant NIC buffers, an RTT of in-flight bytes already exceeds the
//! buffer. This controller composes standard Swift (fabric + endpoint
//! delay windows) with a third window driven by the NIC input-buffer
//! occupancy echoed on every ACK:
//!
//! * occupancy above `occupancy_threshold` triggers a **per-ACK**
//!   multiplicative decrease proportional to the excess — no once-per-RTT
//!   gating, so the aggregate reaction across an incast completes in a
//!   fraction of an RTT's worth of ACKs;
//! * occupancy below the threshold lets the window recover additively.
//!
//! The window in force is the minimum of Swift's and the occupancy
//! window, so the controller is never worse-behaved than Swift on fabric
//! or CPU congestion.

use crate::cc::{AckSample, CongestionControl, LossKind};
use crate::swift::{Swift, SwiftConfig};
use hostcc_sim::SimTime;

/// Host-aware extension parameters.
#[derive(Debug, Clone)]
pub struct HostAwareConfig {
    /// The underlying Swift configuration.
    pub swift: SwiftConfig,
    /// NIC buffer occupancy above which the sub-RTT decrease engages.
    pub occupancy_threshold: f64,
    /// Per-ACK multiplicative-decrease gain on the normalised excess:
    /// `w *= 1 - gamma * (occ - thr)/(1 - thr)`.
    pub gamma: f64,
    /// Additive recovery per acked packet while below the threshold
    /// (defaults to Swift's additive increase so the occupancy window
    /// never lags the Swift windows during congestion-free operation).
    pub recovery_ai: f64,
}

impl Default for HostAwareConfig {
    fn default() -> Self {
        HostAwareConfig {
            swift: SwiftConfig::default(),
            occupancy_threshold: 0.25,
            gamma: 0.08,
            recovery_ai: 1.0,
        }
    }
}

/// Swift + occupancy-driven sub-RTT host window.
#[derive(Debug)]
pub struct HostAware {
    swift: Swift,
    cfg: HostAwareConfig,
    occ_cwnd: f64,
    occupancy_decreases: u64,
}

impl HostAware {
    /// A flow starting at `initial_cwnd` packets.
    pub fn new(cfg: HostAwareConfig, initial_cwnd: f64) -> Self {
        HostAware {
            swift: Swift::new(cfg.swift.clone(), initial_cwnd),
            occ_cwnd: initial_cwnd,
            cfg,
            occupancy_decreases: 0,
        }
    }

    /// The occupancy-driven window (diagnostics).
    pub fn occupancy_window(&self) -> f64 {
        self.occ_cwnd
    }

    /// Sub-RTT decreases taken so far.
    pub fn occupancy_decreases(&self) -> u64 {
        self.occupancy_decreases
    }

    /// The wrapped Swift controller (diagnostics).
    pub fn swift(&self) -> &Swift {
        &self.swift
    }
}

impl CongestionControl for HostAware {
    fn on_ack(&mut self, sample: AckSample) {
        self.swift.on_ack(sample);
        let thr = self.cfg.occupancy_threshold;
        let occ = sample.nic_buffer_frac.clamp(0.0, 1.0);
        if occ > thr {
            // Sub-RTT: every ACK above threshold shrinks the window a
            // little; a burst of signalling ACKs compounds within one RTT.
            let excess = (occ - thr) / (1.0 - thr);
            self.occ_cwnd *= 1.0 - self.cfg.gamma * excess;
            self.occupancy_decreases += 1;
        } else if self.occ_cwnd >= 1.0 {
            self.occ_cwnd += self.cfg.recovery_ai * sample.newly_acked as f64 / self.occ_cwnd;
        } else {
            self.occ_cwnd += self.cfg.recovery_ai * sample.newly_acked as f64;
        }
        self.occ_cwnd = self
            .occ_cwnd
            .clamp(self.cfg.swift.min_cwnd, self.cfg.swift.max_cwnd);
    }

    fn on_loss(&mut self, now: SimTime, kind: LossKind) {
        self.swift.on_loss(now, kind);
        self.occ_cwnd =
            (self.occ_cwnd * (1.0 - self.cfg.swift.max_mdf)).max(self.cfg.swift.min_cwnd);
    }

    fn cwnd(&self) -> f64 {
        self.swift.cwnd().min(self.occ_cwnd)
    }

    fn name(&self) -> &'static str {
        "host-aware"
    }

    fn decrease_stats(&self) -> Option<(u64, u64, u64)> {
        let (f, e, l) = self.swift.decrease_stats()?;
        Some((f, e + self.occupancy_decreases, l))
    }

    fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        self.swift.save_state(w);
        w.f64(self.occ_cwnd);
        w.u64(self.occupancy_decreases);
    }

    fn load_state(
        &mut self,
        r: &mut hostcc_sim::SnapReader<'_>,
    ) -> Result<(), hostcc_sim::SnapError> {
        use hostcc_sim::SnapError;
        // Decode the occupancy window into a scratch Swift first so a
        // failure past the Swift bytes cannot leave `self` half-restored.
        let mut swift = Swift::new(self.cfg.swift.clone(), self.occ_cwnd.max(1.0));
        swift.load_state(r)?;
        let occ_cwnd = r.f64()?;
        if !occ_cwnd.is_finite()
            || occ_cwnd < self.cfg.swift.min_cwnd
            || occ_cwnd > self.cfg.swift.max_cwnd
        {
            return Err(SnapError::Corrupt("occupancy window out of bounds"));
        }
        let occupancy_decreases = r.u64()?;
        self.swift = swift;
        self.occ_cwnd = occ_cwnd;
        self.occupancy_decreases = occupancy_decreases;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostcc_sim::SimDuration;

    fn sample(now_us: u64, occ: f64) -> AckSample {
        AckSample {
            now: SimTime::from_micros(now_us),
            rtt: SimDuration::from_micros(25),
            host_delay: SimDuration::from_micros(10),
            ecn_ce: false,
            nic_buffer_frac: occ,
            newly_acked: 1,
        }
    }

    #[test]
    fn low_occupancy_behaves_like_swift() {
        let mut h = HostAware::new(HostAwareConfig::default(), 8.0);
        let mut s = Swift::new(SwiftConfig::default(), 8.0);
        for i in 0..100 {
            h.on_ack(sample(i * 30, 0.05));
            s.on_ack(sample(i * 30, 0.05));
        }
        // The occupancy window recovers above Swift's, so Swift's binds.
        assert!((h.cwnd() - s.cwnd()).abs() < 1e-9);
        assert_eq!(h.occupancy_decreases(), 0);
    }

    #[test]
    fn high_occupancy_cuts_within_a_handful_of_acks() {
        // Sub-RTT: all samples inside one RTT (gating would allow only a
        // single decrease; the occupancy window takes one per ACK).
        let mut h = HostAware::new(HostAwareConfig::default(), 16.0);
        let w0 = h.cwnd();
        for i in 0..10 {
            h.on_ack(sample(i, 0.95)); // 10 ACKs within 10 us << RTT
        }
        assert_eq!(h.occupancy_decreases(), 10);
        assert!(
            h.cwnd() < w0 * 0.6,
            "ten signalling ACKs should compound: {} -> {}",
            w0,
            h.cwnd()
        );
    }

    #[test]
    fn decrease_is_proportional_to_excess() {
        let mut mild = HostAware::new(HostAwareConfig::default(), 16.0);
        let mut severe = HostAware::new(HostAwareConfig::default(), 16.0);
        for i in 0..20 {
            mild.on_ack(sample(i, 0.30));
            severe.on_ack(sample(i, 1.00));
        }
        assert!(severe.occupancy_window() < mild.occupancy_window());
    }

    #[test]
    fn recovers_after_congestion_clears() {
        let mut h = HostAware::new(HostAwareConfig::default(), 16.0);
        for i in 0..50 {
            h.on_ack(sample(i, 0.9));
        }
        let low = h.occupancy_window();
        for i in 50..2000 {
            h.on_ack(sample(i * 30, 0.05));
        }
        assert!(h.occupancy_window() > low * 2.0, "window should recover");
    }

    #[test]
    fn min_of_windows_binds() {
        let mut h = HostAware::new(HostAwareConfig::default(), 16.0);
        // Drive only the occupancy signal down; Swift sees clean delays.
        for i in 0..200 {
            h.on_ack(sample(i, 0.99));
        }
        assert!(h.occupancy_window() < h.swift().cwnd());
        assert!((h.cwnd() - h.occupancy_window()).abs() < 1e-12);
    }

    #[test]
    fn loss_cuts_both_windows() {
        let mut h = HostAware::new(HostAwareConfig::default(), 16.0);
        h.on_loss(SimTime::from_micros(1), LossKind::FastRetransmit);
        assert!(h.occupancy_window() <= 8.0 + 1e-9);
        assert!(h.swift().cwnd() <= 8.0 + 1e-9);
    }
}
