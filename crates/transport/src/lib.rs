//! # hostcc-transport
//!
//! The transport layer of the reproduction: a full implementation of the
//! Swift congestion-control protocol (delay-based AIMD with separate
//! fabric and endpoint windows and the 100 µs host-delay target whose
//! blind spot the paper exposes), a DCTCP-style ECN baseline, a
//! fixed-window control, per-flow reliability (cumulative ACKs, fast
//! retransmit, go-back-N timeouts, fractional-window pacing) and the
//! closed-loop 16 KB remote-read RPC workload.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cc;
mod counters;
mod dctcp;
mod fixed;
mod flow;
mod host_aware;
mod rpc;
mod swift;

pub use cc::{AckSample, CongestionControl, LossKind, RttEstimator};
pub use dctcp::{Dctcp, DctcpConfig};
pub use fixed::FixedWindow;
pub use flow::{FlowConfig, FlowStats, ReceiverFlow, SendBlocked, SenderFlow};
pub use host_aware::{HostAware, HostAwareConfig};
pub use rpc::{RpcConfig, RpcReadChannel};
pub use swift::{Swift, SwiftConfig, SwiftStats};
