//! A DCTCP-style ECN-proportional controller.
//!
//! The baseline "TCP-like" protocol for comparison (§4 argues that
//! TCP/DCTCP-class protocols share Swift's host-congestion blind spot:
//! they watch fabric signals — ECN marks from switches — and never see the
//! NIC input buffer at all). Implements the standard DCTCP rule: maintain
//! an EWMA `alpha` of the fraction of marked packets per RTT and cut the
//! window by `alpha/2` once per round.

use crate::cc::{AckSample, CongestionControl, LossKind};
use hostcc_sim::{SimDuration, SimTime};

/// DCTCP parameters.
#[derive(Debug, Clone)]
pub struct DctcpConfig {
    /// EWMA gain for the marked fraction (RFC 8257 suggests 1/16).
    pub g: f64,
    /// Additive increase per RTT in congestion avoidance, packets.
    pub ai: f64,
    /// Window bounds, packets.
    pub min_cwnd: f64,
    /// Upper window bound, packets.
    pub max_cwnd: f64,
    /// Slow-start threshold, packets.
    pub initial_ssthresh: f64,
}

impl Default for DctcpConfig {
    fn default() -> Self {
        DctcpConfig {
            g: 1.0 / 16.0,
            ai: 1.0,
            min_cwnd: 1.0,
            max_cwnd: 256.0,
            initial_ssthresh: 64.0,
        }
    }
}

/// DCTCP controller state for one flow.
#[derive(Debug)]
pub struct Dctcp {
    cfg: DctcpConfig,
    cwnd: f64,
    ssthresh: f64,
    alpha: f64,
    // Per-round accounting.
    round_end: SimTime,
    round_acked: u64,
    round_marked: u64,
    losses: u64,
}

impl Dctcp {
    /// A flow starting at `initial_cwnd` packets.
    pub fn new(cfg: DctcpConfig, initial_cwnd: f64) -> Self {
        Dctcp {
            cwnd: initial_cwnd,
            ssthresh: cfg.initial_ssthresh,
            cfg,
            alpha: 0.0,
            round_end: SimTime::ZERO,
            round_acked: 0,
            round_marked: 0,
            losses: 0,
        }
    }

    /// The current marked-fraction estimate.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Loss events observed.
    pub fn losses(&self) -> u64 {
        self.losses
    }

    fn end_round(&mut self, now: SimTime, rtt: SimDuration) {
        if self.round_acked > 0 {
            let frac = self.round_marked as f64 / self.round_acked as f64;
            self.alpha += self.cfg.g * (frac - self.alpha);
            if self.round_marked > 0 {
                // Proportional decrease.
                self.cwnd *= 1.0 - self.alpha / 2.0;
                self.ssthresh = self.cwnd;
            } else if self.cwnd < self.ssthresh {
                // Slow start: double per round.
                self.cwnd *= 2.0;
            } else {
                self.cwnd += self.cfg.ai;
            }
            self.cwnd = self.cwnd.clamp(self.cfg.min_cwnd, self.cfg.max_cwnd);
        }
        self.round_acked = 0;
        self.round_marked = 0;
        self.round_end = now + rtt;
    }
}

impl CongestionControl for Dctcp {
    fn on_ack(&mut self, sample: AckSample) {
        self.round_acked += sample.newly_acked;
        if sample.ecn_ce {
            self.round_marked += sample.newly_acked;
        }
        if sample.now >= self.round_end {
            self.end_round(sample.now, sample.rtt);
        }
    }

    fn on_loss(&mut self, _now: SimTime, kind: LossKind) {
        self.losses += 1;
        self.cwnd = match kind {
            LossKind::FastRetransmit => (self.cwnd * 0.5).max(self.cfg.min_cwnd),
            LossKind::Timeout => self.cfg.min_cwnd,
        };
        self.ssthresh = self.cwnd.max(self.cfg.min_cwnd * 2.0);
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn name(&self) -> &'static str {
        "dctcp"
    }

    fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        w.f64(self.cwnd);
        w.f64(self.ssthresh);
        w.f64(self.alpha);
        w.time(self.round_end);
        w.u64(self.round_acked);
        w.u64(self.round_marked);
        w.u64(self.losses);
    }

    fn load_state(
        &mut self,
        r: &mut hostcc_sim::SnapReader<'_>,
    ) -> Result<(), hostcc_sim::SnapError> {
        use hostcc_sim::SnapError;
        let cwnd = r.f64()?;
        if !cwnd.is_finite() || cwnd <= 0.0 {
            return Err(SnapError::Corrupt("dctcp window out of bounds"));
        }
        let ssthresh = r.f64()?;
        if !ssthresh.is_finite() || ssthresh <= 0.0 {
            return Err(SnapError::Corrupt("dctcp ssthresh out of bounds"));
        }
        let alpha = r.f64()?;
        if !(0.0..=1.0).contains(&alpha) {
            return Err(SnapError::Corrupt("dctcp alpha out of range"));
        }
        let round_end = r.time()?;
        let round_acked = r.u64()?;
        let round_marked = r.u64()?;
        if round_marked > round_acked {
            return Err(SnapError::Corrupt("dctcp marks exceed acks"));
        }
        let losses = r.u64()?;
        self.cwnd = cwnd;
        self.ssthresh = ssthresh;
        self.alpha = alpha;
        self.round_end = round_end;
        self.round_acked = round_acked;
        self.round_marked = round_marked;
        self.losses = losses;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_us: u64, marked: bool) -> AckSample {
        AckSample {
            now: SimTime::from_micros(now_us),
            rtt: SimDuration::from_micros(50),
            host_delay: SimDuration::ZERO,
            ecn_ce: marked,
            nic_buffer_frac: 0.0,
            newly_acked: 1,
        }
    }

    #[test]
    fn slow_start_doubles_until_ssthresh() {
        let mut d = Dctcp::new(DctcpConfig::default(), 2.0);
        // Several unmarked rounds.
        for r in 0..4 {
            for i in 0..10 {
                d.on_ack(ack(r * 60 + i, false));
            }
            d.on_ack(ack((r + 1) * 60, false));
        }
        assert!(d.cwnd() > 16.0, "slow start should grow fast: {}", d.cwnd());
    }

    #[test]
    fn full_marking_converges_to_half() {
        let mut d = Dctcp::new(DctcpConfig::default(), 100.0);
        // Every packet marked for many rounds: alpha -> 1, window halves
        // each round until the floor.
        for r in 0..200u64 {
            for i in 0..5 {
                d.on_ack(ack(r * 60 + i, true));
            }
            d.on_ack(ack((r + 1) * 60, true));
        }
        assert!(d.alpha() > 0.9, "alpha {}", d.alpha());
        assert!(
            d.cwnd() <= 2.0,
            "persistent marking floors cwnd: {}",
            d.cwnd()
        );
    }

    #[test]
    fn light_marking_cuts_gently() {
        let mut d = Dctcp::new(DctcpConfig::default(), 100.0);
        // One marked packet in 20 per round: alpha stays small, decreases
        // are proportionally small - DCTCP's signature.
        for r in 0..30u64 {
            for i in 0..19 {
                d.on_ack(ack(r * 60 + i, false));
            }
            d.on_ack(ack(r * 60 + 59, true));
        }
        assert!(d.alpha() < 0.2, "alpha {}", d.alpha());
        assert!(d.cwnd() > 50.0, "gentle decrease: {}", d.cwnd());
    }

    #[test]
    fn timeout_collapses_window() {
        let mut d = Dctcp::new(DctcpConfig::default(), 64.0);
        d.on_loss(SimTime::ZERO, LossKind::Timeout);
        assert_eq!(d.cwnd(), 1.0);
        assert_eq!(d.losses(), 1);
    }

    #[test]
    fn fast_retransmit_halves_window() {
        let mut d = Dctcp::new(DctcpConfig::default(), 64.0);
        d.on_loss(SimTime::ZERO, LossKind::FastRetransmit);
        assert_eq!(d.cwnd(), 32.0);
    }

    #[test]
    fn ignores_host_delay_signal() {
        // The baseline's defining limitation: enormous host delay with no
        // ECN marks never shrinks the window.
        let mut d = Dctcp::new(DctcpConfig::default(), 8.0);
        let w0 = d.cwnd();
        for r in 0..10u64 {
            let mut s = ack(r * 60, false);
            s.host_delay = SimDuration::from_millis(5);
            d.on_ack(s);
        }
        assert!(d.cwnd() >= w0, "host delay must be invisible to DCTCP");
    }
}
