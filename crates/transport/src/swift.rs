//! Swift congestion control (Kumar et al., SIGCOMM 2020) — the protocol the
//! paper's production cluster and testbed run.
//!
//! Swift is a delay-based AIMD protocol with one decisive feature for this
//! study: it decomposes the measured RTT into a *fabric* component and an
//! *endpoint (host)* component, maintains a separate window for each, and
//! uses the minimum. The endpoint window reacts when the receiver's host
//! delay exceeds a **target host delay of 100 µs** — chosen to absorb
//! CPU-induced host delays. The paper's central observation (§3.1) is that
//! a ~1 MiB NIC buffer drains in *less* than that target whenever the
//! NIC-to-memory path still moves ≥ 88.8 Gbps, so under host-interconnect
//! congestion the buffer overflows before Swift ever sees a 100 µs host
//! delay: drops happen with the protocol's eyes open.

use crate::cc::{AckSample, CongestionControl, LossKind};
use hostcc_sim::{SimDuration, SimTime};

/// Swift parameters.
#[derive(Debug, Clone)]
pub struct SwiftConfig {
    /// Base fabric target delay (propagation + per-hop allowances).
    pub fabric_base_target: SimDuration,
    /// Target endpoint (host) delay; the paper's deployment uses 100 µs.
    pub host_target: SimDuration,
    /// Additive increase, packets per RTT.
    pub ai: f64,
    /// Multiplicative-decrease gain applied to the normalised delay excess.
    pub beta: f64,
    /// Maximum multiplicative decrease per event (cwnd is multiplied by at
    /// least `1 - max_mdf`).
    pub max_mdf: f64,
    /// Window bounds, packets.
    pub min_cwnd: f64,
    /// Upper window bound, packets.
    pub max_cwnd: f64,
    /// Flow-scaling range: extra fabric target `fs_range / sqrt(cwnd)`,
    /// bounded by `fs_range * fs_cap_multiplier`; 0 disables flow scaling.
    pub fs_range: SimDuration,
    /// Cap on the flow-scaled extra target, as a multiple of `fs_range`.
    ///
    /// Must exceed 1.0 for flow scaling to keep differentiating flows with
    /// sub-packet windows (the regime of a 480-flow incast): a saturated
    /// cap gives every small flow the same target, removing the force that
    /// equalises them.
    pub fs_cap_multiplier: f64,
    /// Timeout decrease: cwnd multiplier on RTO.
    pub rto_mdf: f64,
}

impl Default for SwiftConfig {
    fn default() -> Self {
        SwiftConfig {
            fabric_base_target: SimDuration::from_micros(25),
            host_target: SimDuration::from_micros(100),
            ai: 1.0,
            beta: 0.8,
            max_mdf: 0.5,
            min_cwnd: 0.01,
            max_cwnd: 256.0,
            fs_range: SimDuration::from_micros(50),
            fs_cap_multiplier: 3.0,
            rto_mdf: 0.5,
        }
    }
}

/// One delay-tracked window (Swift keeps two: fabric and endpoint).
#[derive(Debug, Clone)]
struct DelayWindow {
    cwnd: f64,
    last_decrease: SimTime,
}

impl DelayWindow {
    fn new(initial: f64) -> Self {
        DelayWindow {
            cwnd: initial,
            last_decrease: SimTime::ZERO,
        }
    }

    /// Apply Swift's per-ACK rule against `target`.
    fn update(
        &mut self,
        delay: SimDuration,
        target: SimDuration,
        sample: &AckSample,
        cfg: &SwiftConfig,
    ) {
        if delay <= target {
            // Additive increase: ai/cwnd per acked packet above one packet,
            // ai per acked packet below.
            let acked = sample.newly_acked as f64;
            if self.cwnd >= 1.0 {
                self.cwnd += cfg.ai * acked / self.cwnd;
            } else {
                self.cwnd += cfg.ai * acked;
            }
        } else {
            // At most one multiplicative decrease per RTT.
            let can_decrease = sample.now.saturating_since(self.last_decrease) >= sample.rtt;
            if can_decrease {
                let excess =
                    (delay.as_nanos() - target.as_nanos()) as f64 / delay.as_nanos() as f64;
                let factor = (1.0 - cfg.beta * excess).max(1.0 - cfg.max_mdf);
                self.cwnd *= factor;
                self.last_decrease = sample.now;
            }
        }
        self.cwnd = self.cwnd.clamp(cfg.min_cwnd, cfg.max_cwnd);
    }
}

/// Per-ACK decision record, exported for diagnostics and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct SwiftStats {
    /// ACKs processed.
    pub acks: u64,
    /// Multiplicative decreases triggered by the fabric window.
    pub fabric_decreases: u64,
    /// Multiplicative decreases triggered by the endpoint window.
    pub endpoint_decreases: u64,
    /// Loss events (fast retransmit + timeout).
    pub losses: u64,
}

/// The Swift congestion controller for one flow.
#[derive(Debug)]
pub struct Swift {
    cfg: SwiftConfig,
    fabric: DelayWindow,
    endpoint: DelayWindow,
    stats: SwiftStats,
}

impl Swift {
    /// A flow starting at `initial_cwnd` packets.
    pub fn new(cfg: SwiftConfig, initial_cwnd: f64) -> Self {
        Swift {
            fabric: DelayWindow::new(initial_cwnd),
            endpoint: DelayWindow::new(initial_cwnd),
            cfg,
            stats: SwiftStats::default(),
        }
    }

    /// The fabric target at the current window (base + flow scaling).
    pub fn fabric_target(&self) -> SimDuration {
        if self.cfg.fs_range.is_zero() {
            return self.cfg.fabric_base_target;
        }
        let w = self.cwnd().max(self.cfg.min_cwnd);
        let extra = self.cfg.fs_range.as_nanos() as f64 / w.sqrt();
        let cap = self.cfg.fs_range.as_nanos() as f64 * self.cfg.fs_cap_multiplier.max(1.0);
        let extra = extra.min(cap);
        self.cfg.fabric_base_target + SimDuration::from_nanos(extra as u64)
    }

    /// The endpoint (host) target.
    pub fn host_target(&self) -> SimDuration {
        self.cfg.host_target
    }

    /// Controller statistics.
    pub fn stats(&self) -> SwiftStats {
        self.stats
    }

    /// The two internal windows (fabric, endpoint) for diagnostics.
    pub fn windows(&self) -> (f64, f64) {
        (self.fabric.cwnd, self.endpoint.cwnd)
    }

    fn save_window(win: &DelayWindow, w: &mut hostcc_sim::SnapWriter) {
        w.f64(win.cwnd);
        w.time(win.last_decrease);
    }

    fn load_window(
        r: &mut hostcc_sim::SnapReader<'_>,
        cfg: &SwiftConfig,
    ) -> Result<DelayWindow, hostcc_sim::SnapError> {
        let cwnd = r.f64()?;
        if !cwnd.is_finite() || cwnd < cfg.min_cwnd || cwnd > cfg.max_cwnd {
            return Err(hostcc_sim::SnapError::Corrupt("swift window out of bounds"));
        }
        Ok(DelayWindow {
            cwnd,
            last_decrease: r.time()?,
        })
    }
}

impl CongestionControl for Swift {
    fn on_ack(&mut self, sample: AckSample) {
        self.stats.acks += 1;
        // Decompose: endpoint delay is echoed by the receiver; the fabric
        // component is what remains of the RTT.
        let host_delay = sample.host_delay;
        let fabric_delay = sample.rtt.saturating_sub(host_delay);

        let fabric_target = self.fabric_target();
        let before_f = self.fabric.last_decrease;
        self.fabric
            .update(fabric_delay, fabric_target, &sample, &self.cfg);
        if self.fabric.last_decrease != before_f {
            self.stats.fabric_decreases += 1;
        }

        let before_e = self.endpoint.last_decrease;
        self.endpoint
            .update(host_delay, self.cfg.host_target, &sample, &self.cfg);
        if self.endpoint.last_decrease != before_e {
            self.stats.endpoint_decreases += 1;
        }
    }

    fn on_loss(&mut self, now: SimTime, kind: LossKind) {
        self.stats.losses += 1;
        let factor = match kind {
            LossKind::FastRetransmit => 1.0 - self.cfg.max_mdf,
            LossKind::Timeout => self.cfg.rto_mdf,
        };
        self.fabric.cwnd = (self.fabric.cwnd * factor).max(self.cfg.min_cwnd);
        self.endpoint.cwnd = (self.endpoint.cwnd * factor).max(self.cfg.min_cwnd);
        self.fabric.last_decrease = now;
        self.endpoint.last_decrease = now;
    }

    fn cwnd(&self) -> f64 {
        self.fabric.cwnd.min(self.endpoint.cwnd)
    }

    fn name(&self) -> &'static str {
        "swift"
    }

    fn decrease_stats(&self) -> Option<(u64, u64, u64)> {
        Some((
            self.stats.fabric_decreases,
            self.stats.endpoint_decreases,
            self.stats.losses,
        ))
    }

    fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        Self::save_window(&self.fabric, w);
        Self::save_window(&self.endpoint, w);
        w.u64(self.stats.acks);
        w.u64(self.stats.fabric_decreases);
        w.u64(self.stats.endpoint_decreases);
        w.u64(self.stats.losses);
    }

    fn load_state(
        &mut self,
        r: &mut hostcc_sim::SnapReader<'_>,
    ) -> Result<(), hostcc_sim::SnapError> {
        let fabric = Self::load_window(r, &self.cfg)?;
        let endpoint = Self::load_window(r, &self.cfg)?;
        let stats = SwiftStats {
            acks: r.u64()?,
            fabric_decreases: r.u64()?,
            endpoint_decreases: r.u64()?,
            losses: r.u64()?,
        };
        self.fabric = fabric;
        self.endpoint = endpoint;
        self.stats = stats;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(now_us: u64, rtt_us: u64, host_us: u64) -> AckSample {
        AckSample {
            now: SimTime::from_micros(now_us),
            rtt: SimDuration::from_micros(rtt_us),
            host_delay: SimDuration::from_micros(host_us),
            ecn_ce: false,
            nic_buffer_frac: 0.0,
            newly_acked: 1,
        }
    }

    fn swift() -> Swift {
        Swift::new(SwiftConfig::default(), 10.0)
    }

    #[test]
    fn low_delay_grows_window() {
        let mut s = swift();
        let w0 = s.cwnd();
        for i in 0..50 {
            s.on_ack(sample(i * 20, 15, 5));
        }
        assert!(s.cwnd() > w0, "window should grow under low delay");
        assert_eq!(s.stats().fabric_decreases, 0);
        assert_eq!(s.stats().endpoint_decreases, 0);
    }

    #[test]
    fn high_fabric_delay_shrinks_window() {
        let mut s = swift();
        let w0 = s.cwnd();
        // Fabric delay 400 us (host 5): well beyond base target.
        for i in 0..20 {
            s.on_ack(sample(i * 500, 405, 5));
        }
        assert!(s.cwnd() < w0, "fabric congestion must shrink cwnd");
        assert!(s.stats().fabric_decreases > 0);
        assert_eq!(s.stats().endpoint_decreases, 0);
    }

    #[test]
    fn host_delay_below_target_is_invisible() {
        // The paper's blind spot: 90 us of host delay (a full NIC buffer at
        // high drain rate) is *below* the 100 us target, so Swift keeps
        // growing the window even though the NIC queue is about to
        // overflow.
        let mut s = swift();
        let w0 = s.cwnd();
        for i in 0..50 {
            s.on_ack(sample(i * 120, 110, 90));
        }
        assert!(
            s.cwnd() > w0,
            "host delay below the 100 us target must not trigger decrease"
        );
        assert_eq!(s.stats().endpoint_decreases, 0);
    }

    #[test]
    fn host_delay_above_target_triggers_endpoint_decrease() {
        let mut s = swift();
        for i in 0..20 {
            s.on_ack(sample(i * 300, 160, 140));
        }
        assert!(s.stats().endpoint_decreases > 0);
        let (fabric, endpoint) = s.windows();
        assert!(
            endpoint < fabric,
            "endpoint window should bind: {endpoint} vs {fabric}"
        );
    }

    #[test]
    fn at_most_one_decrease_per_rtt() {
        let mut s = swift();
        // Three back-to-back ACKs with huge delay within one RTT window.
        s.on_ack(sample(10, 500, 450));
        let w_after_first = s.cwnd();
        s.on_ack(sample(11, 500, 450));
        s.on_ack(sample(12, 500, 450));
        assert_eq!(
            s.cwnd(),
            w_after_first,
            "additional decreases within the same RTT must be suppressed"
        );
    }

    #[test]
    fn decrease_is_bounded_by_max_mdf() {
        let mut s = swift();
        let w0 = s.cwnd();
        // Absurd delay: the per-event decrease is capped at 50%.
        s.on_ack(sample(10, 100_000, 99_000));
        assert!(s.cwnd() >= w0 * 0.5 - 1e-9);
    }

    #[test]
    fn window_never_leaves_bounds() {
        let mut s = swift();
        for i in 0..500 {
            s.on_ack(sample(i * 1000, 100_000, 99_000));
        }
        assert!(s.cwnd() >= SwiftConfig::default().min_cwnd);
        let mut g = swift();
        for i in 0..100_000 {
            g.on_ack(sample(i * 20, 10, 1));
        }
        assert!(g.cwnd() <= SwiftConfig::default().max_cwnd);
    }

    #[test]
    fn pacing_engages_below_unit_window() {
        let mut s = Swift::new(SwiftConfig::default(), 0.5);
        assert!(s.pacing_interval(SimDuration::from_micros(40)).is_some());
        // Grow it above 1: pacing off.
        for i in 0..200 {
            s.on_ack(sample(i * 50, 15, 5));
        }
        assert!(s.cwnd() >= 1.0);
        assert!(s.pacing_interval(SimDuration::from_micros(40)).is_none());
    }

    #[test]
    fn timeout_halves_both_windows() {
        let mut s = swift();
        let (f0, e0) = s.windows();
        s.on_loss(SimTime::from_micros(10), LossKind::Timeout);
        let (f1, e1) = s.windows();
        assert!((f1 - f0 * 0.5).abs() < 1e-9);
        assert!((e1 - e0 * 0.5).abs() < 1e-9);
        assert_eq!(s.stats().losses, 1);
    }

    #[test]
    fn flow_scaling_raises_target_for_small_windows() {
        let small = Swift::new(SwiftConfig::default(), 1.0);
        let large = Swift::new(SwiftConfig::default(), 100.0);
        assert!(small.fabric_target() > large.fabric_target());
        // Differentiation continues below one-packet windows (up to the
        // cap): this is what equalises sub-packet flows in a wide incast.
        let tiny = Swift::new(SwiftConfig::default(), 0.25);
        let sub = Swift::new(SwiftConfig::default(), 0.7);
        assert!(tiny.fabric_target() > sub.fabric_target());
        assert!(sub.fabric_target() > small.fabric_target());
        // Disabled flow scaling: target equals the base.
        let cfg = SwiftConfig {
            fs_range: SimDuration::ZERO,
            ..Default::default()
        };
        let s = Swift::new(cfg, 1.0);
        assert_eq!(s.fabric_target(), SimDuration::from_micros(25));
    }

    #[test]
    fn sawtooth_emerges_around_target() {
        // Closed-loop toy: delay grows with cwnd; Swift should oscillate
        // (grow, cut, grow) rather than diverge - the classic sawtooth the
        // paper invokes to explain residual drops.
        let mut s = swift();
        let mut deltas: Vec<f64> = Vec::new();
        let mut last = s.cwnd();
        for i in 0..400 {
            // Host delay proportional to window: 12 us per packet of cwnd.
            let host = (s.cwnd() * 12.0) as u64;
            s.on_ack(sample(i * 30, host + 20, host));
            deltas.push(s.cwnd() - last);
            last = s.cwnd();
        }
        let ups = deltas.iter().filter(|d| **d > 0.0).count();
        let downs = deltas.iter().filter(|d| **d < 0.0).count();
        assert!(ups > 50 && downs > 3, "sawtooth: ups={ups} downs={downs}");
        // Steady-state window should hover near target/slope = 100/12 ~ 8.3.
        assert!((4.0..14.0).contains(&s.cwnd()), "cwnd {}", s.cwnd());
    }
}
