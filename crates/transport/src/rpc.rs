//! The RPC workload layer: 16 KB remote reads.
//!
//! The paper's minimal host-congestion workload: each receiver thread
//! issues 16 KB remote reads over one connection per sender. A read's
//! response is a burst of MTU-sized data packets; when all of them have
//! been delivered to the application the thread immediately issues the
//! next read. We model this closed loop as a *data frontier* on the sender
//! flow: the sender may transmit only the packets belonging to reads the
//! receiver has issued.

/// RPC read parameters.
#[derive(Debug, Clone, Copy)]
pub struct RpcConfig {
    /// Bytes returned by one remote read (paper: 16 KB).
    pub read_bytes: u32,
    /// Payload bytes per MTU packet (paper: 4 KiB MTU).
    pub mtu_payload: u32,
    /// Reads kept outstanding per connection by the receiver thread.
    pub outstanding_reads: u32,
}

impl Default for RpcConfig {
    fn default() -> Self {
        RpcConfig {
            read_bytes: 16 * 1024,
            mtu_payload: 4096,
            outstanding_reads: 8,
        }
    }
}

impl RpcConfig {
    /// Data packets that carry one read's response.
    pub fn packets_per_read(&self) -> u64 {
        (self.read_bytes as u64).div_ceil(self.mtu_payload as u64)
    }
}

/// Closed-loop read tracking for one connection.
#[derive(Debug)]
pub struct RpcReadChannel {
    cfg: RpcConfig,
    delivered_packets: u64,
}

impl RpcReadChannel {
    /// A channel with `cfg.outstanding_reads` reads issued immediately.
    pub fn new(cfg: RpcConfig) -> Self {
        assert!(cfg.outstanding_reads > 0, "need at least one read");
        assert!(cfg.read_bytes >= cfg.mtu_payload, "read smaller than MTU");
        RpcReadChannel {
            cfg,
            delivered_packets: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RpcConfig {
        &self.cfg
    }

    /// Record that `n` more packets were delivered, in order, to the
    /// application (completions may be implied).
    pub fn on_delivered(&mut self, n: u64) {
        self.delivered_packets += n;
    }

    /// Packets recorded as delivered so far.
    pub fn delivered_packets(&self) -> u64 {
        self.delivered_packets
    }

    /// Reads fully completed so far.
    pub fn completed_reads(&self) -> u64 {
        self.delivered_packets / self.cfg.packets_per_read()
    }

    /// Application-level bytes delivered by completed reads.
    pub fn completed_bytes(&self) -> u64 {
        self.completed_reads() * self.cfg.read_bytes as u64
    }

    /// The sender-side data frontier: one packet past the last packet of
    /// the newest issued read. The receiver keeps `outstanding_reads`
    /// issued beyond the last completed one.
    pub fn data_frontier(&self) -> u64 {
        (self.completed_reads() + self.cfg.outstanding_reads as u64) * self.cfg.packets_per_read()
    }

    /// Serialize the evolving state (delivered-packet count).
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        w.u64(self.delivered_packets);
    }

    /// Restore into a channel rebuilt from the same configuration.
    pub fn load_state(
        &mut self,
        r: &mut hostcc_sim::SnapReader<'_>,
    ) -> Result<(), hostcc_sim::SnapError> {
        self.delivered_packets = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packets_per_read_default() {
        assert_eq!(RpcConfig::default().packets_per_read(), 4);
        let odd = RpcConfig {
            read_bytes: 10_000,
            mtu_payload: 4096,
            outstanding_reads: 1,
        };
        assert_eq!(odd.packets_per_read(), 3);
    }

    #[test]
    fn initial_frontier_covers_outstanding_reads() {
        let ch = RpcReadChannel::new(RpcConfig::default());
        // 8 outstanding reads x 4 packets.
        assert_eq!(ch.data_frontier(), 32);
        assert_eq!(ch.completed_reads(), 0);
    }

    #[test]
    fn frontier_advances_one_read_at_a_time() {
        let mut ch = RpcReadChannel::new(RpcConfig::default());
        ch.on_delivered(3);
        assert_eq!(ch.completed_reads(), 0, "read not complete at 3/4");
        assert_eq!(ch.data_frontier(), 32);
        ch.on_delivered(1);
        assert_eq!(ch.completed_reads(), 1);
        assert_eq!(ch.data_frontier(), 36, "a new read is issued");
        assert_eq!(ch.completed_bytes(), 16 * 1024);
    }

    #[test]
    fn bulk_delivery_completes_many_reads() {
        let mut ch = RpcReadChannel::new(RpcConfig::default());
        ch.on_delivered(4 * 100);
        assert_eq!(ch.completed_reads(), 100);
        assert_eq!(ch.completed_bytes(), 100 * 16 * 1024);
        assert_eq!(ch.data_frontier(), 432);
    }

    #[test]
    #[should_panic(expected = "at least one read")]
    fn zero_outstanding_rejected() {
        let _ = RpcReadChannel::new(RpcConfig {
            outstanding_reads: 0,
            ..Default::default()
        });
    }
}
