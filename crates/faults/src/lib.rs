//! Deterministic fault injection for the host-congestion testbed.
//!
//! A [`FaultPlan`] is part of the experiment configuration: a list of
//! [`FaultSpec`] windows (one-shot or recurring) whose start/end edges are
//! scheduled through the same timing wheel as every other event, so a run
//! with a fault plan is exactly as reproducible as one without — identical
//! seeds give bit-identical metrics, faults included.
//!
//! The plan is pure data; the *effects* live in the host testbed, which
//! consults a [`FaultState`] on the datapath (is the access link down? by
//! what factor is memory bandwidth throttled?) and charges what happened
//! to [`FaultCounters`]. A [`RecoveryTracker`] samples goodput before,
//! during and after fault windows to answer the question the transport
//! machinery exists for: does the system actually come back?

use hostcc_sim::SimDuration;
use hostcc_trace::{CounterRegistry, CounterSource};

/// What to break. Each variant targets one datapath layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// PCIe link-layer errors: each TLP crossing the link during the
    /// window is NAKed with this probability and must be replayed from
    /// the replay buffer after a replay-timer backoff (the real PCIe
    /// DLLP ACK/NAK retry mechanism).
    PcieReplay {
        /// Probability in [0, 1] that a TLP is NAKed and replayed.
        nak_rate: f64,
    },
    /// Access-link blackout: every packet arriving at the NIC during the
    /// window is lost on the wire. Recovery is the transport's job
    /// (dup-ACKs and RTO backoff).
    LinkFlap,
    /// NIC descriptor-refill stall: receiver threads stop re-posting Rx
    /// descriptors, so the ring drains and packets drop descriptor-starved
    /// until the window ends and the deferred refills are posted.
    DescriptorStall,
    /// IOTLB invalidation storm: the IOMMU's IOTLB and page-walk cache
    /// are flushed every `flush_period` during the window, forcing a
    /// page-walk burst on every translation after each flush.
    IotlbStorm {
        /// Interval between successive full flushes inside the window.
        flush_period: SimDuration,
    },
    /// Memory-bandwidth throttle step: the bandwidth the memory
    /// controller grants the NIC is multiplied by this factor for the
    /// duration of the window (models thermal/RAPL throttling or a
    /// bully workload beyond the modeled antagonist).
    MemThrottle {
        /// Multiplier in (0, 1] applied to the NIC's memory-bandwidth share.
        factor: f64,
    },
    /// Receiver-core preemption: the first `cores` receiver threads are
    /// descheduled for the window (their `core_free_at` horizon is pushed
    /// out), stalling packet processing on those queues.
    CorePreempt {
        /// Number of receiver cores preempted (clamped to the thread count).
        cores: u32,
    },
}

impl FaultKind {
    /// Stable lower-case name used in counters, traces and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::PcieReplay { .. } => "pcie_replay",
            FaultKind::LinkFlap => "link_flap",
            FaultKind::DescriptorStall => "descriptor_stall",
            FaultKind::IotlbStorm { .. } => "iotlb_storm",
            FaultKind::MemThrottle { .. } => "mem_throttle",
            FaultKind::CorePreempt { .. } => "core_preempt",
        }
    }
}

/// One fault window (or a train of them): `kind` holds from `at` for
/// `duration`, repeating every `period` for `repeats` occurrences.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// Start of the first window, measured from simulation start.
    pub at: SimDuration,
    /// How long each window lasts.
    pub duration: SimDuration,
    /// Start-to-start interval between consecutive windows.
    pub period: SimDuration,
    /// Total number of windows (>= 1).
    pub repeats: u32,
}

impl FaultSpec {
    /// Start offsets of every window in this spec.
    pub fn occurrences(&self) -> impl Iterator<Item = SimDuration> + '_ {
        (0..self.repeats.max(1)).map(move |r| {
            SimDuration::from_nanos(self.at.as_nanos() + self.period.as_nanos() * r as u64)
        })
    }
}

/// A deterministic schedule of fault windows. Empty by default: a testbed
/// built with an empty plan takes the exact same code paths (no fault
/// events scheduled, no fault RNG draws) and produces bit-identical
/// metrics to a build without the fault layer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into the fault RNG stream (kept separate from the
    /// testbed seed so adding faults never perturbs workload arrivals).
    pub seed: u64,
    /// The fault windows.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a single window of `kind` starting at `at` for `duration`.
    pub fn one_shot(mut self, kind: FaultKind, at: SimDuration, duration: SimDuration) -> Self {
        self.specs.push(FaultSpec {
            kind,
            at,
            duration,
            period: SimDuration::ZERO,
            repeats: 1,
        });
        self
    }

    /// Add a train of `repeats` windows of `kind`, the first at `at`,
    /// each lasting `duration`, starting every `period`.
    pub fn recurring(
        mut self,
        kind: FaultKind,
        at: SimDuration,
        duration: SimDuration,
        period: SimDuration,
        repeats: u32,
    ) -> Self {
        self.specs.push(FaultSpec {
            kind,
            at,
            duration,
            period,
            repeats,
        });
        self
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Total number of fault windows across all specs.
    pub fn window_count(&self) -> u64 {
        self.specs.iter().map(|s| s.repeats.max(1) as u64).sum()
    }
}

/// Lifetime counters for everything the fault layer did. Published into
/// the shared [`CounterRegistry`] next to the datapath components' own
/// counters, so chaos runs are diagnosable from the same JSON export.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultCounters {
    /// Fault windows opened, per kind (indexed by kind order above).
    pub windows_opened: [u64; 6],
    /// Packets dropped on the wire by link-flap windows.
    pub link_dropped_packets: u64,
    /// Rx descriptor refills deferred by descriptor-stall windows.
    pub deferred_refills: u64,
    /// Full IOTLB/PWC flushes issued by invalidation storms.
    pub iotlb_flushes: u64,
    /// Receiver-core time stolen by preemption windows, in ns.
    pub preempt_ns: u64,
    /// Memory-throttle windows applied.
    pub throttle_windows: u64,
}

impl FaultCounters {
    const KIND_NAMES: [&'static str; 6] = [
        "pcie_replay",
        "link_flap",
        "descriptor_stall",
        "iotlb_storm",
        "mem_throttle",
        "core_preempt",
    ];

    fn kind_index(kind: &FaultKind) -> usize {
        match kind {
            FaultKind::PcieReplay { .. } => 0,
            FaultKind::LinkFlap => 1,
            FaultKind::DescriptorStall => 2,
            FaultKind::IotlbStorm { .. } => 3,
            FaultKind::MemThrottle { .. } => 4,
            FaultKind::CorePreempt { .. } => 5,
        }
    }

    /// Total fault windows opened across all kinds.
    pub fn total_windows(&self) -> u64 {
        self.windows_opened.iter().sum()
    }
}

impl CounterSource for FaultCounters {
    fn export_counters(&self, reg: &mut CounterRegistry) {
        for (i, name) in Self::KIND_NAMES.iter().enumerate() {
            reg.set(&format!("faults.injected.{name}"), self.windows_opened[i]);
        }
        reg.set("faults.link.dropped_packets", self.link_dropped_packets);
        reg.set("faults.desc.deferred_refills", self.deferred_refills);
        reg.set("faults.iotlb.flushes", self.iotlb_flushes);
        reg.set("faults.cpu.preempt_ns", self.preempt_ns);
        reg.set("faults.mem.throttle_windows", self.throttle_windows);
    }
}

/// Runtime fault state: which windows are currently open, and the
/// aggregate datapath effects the testbed consults on its hot path. The
/// aggregates are recomputed only on window edges, so the per-packet cost
/// of a wired-but-empty fault layer is a couple of field reads.
#[derive(Debug, Clone)]
pub struct FaultState {
    specs: Vec<FaultSpec>,
    /// Open-window count per spec (a recurring spec's windows can overlap
    /// when `period < duration`).
    open: Vec<u32>,
    /// Lifetime counters.
    pub counters: FaultCounters,
}

impl FaultState {
    /// Runtime state for `plan`.
    pub fn new(plan: &FaultPlan) -> Self {
        FaultState {
            open: vec![0; plan.specs.len()],
            specs: plan.specs.clone(),
            counters: FaultCounters::default(),
        }
    }

    /// The spec behind index `idx`.
    pub fn spec(&self, idx: usize) -> &FaultSpec {
        &self.specs[idx]
    }

    /// Open a window of spec `idx`. Returns the kind for convenience.
    pub fn begin(&mut self, idx: usize) -> FaultKind {
        self.open[idx] += 1;
        let kind = self.specs[idx].kind;
        self.counters.windows_opened[FaultCounters::kind_index(&kind)] += 1;
        kind
    }

    /// Close a window of spec `idx`.
    pub fn end(&mut self, idx: usize) -> FaultKind {
        debug_assert!(self.open[idx] > 0, "fault window closed twice");
        self.open[idx] = self.open[idx].saturating_sub(1);
        self.specs[idx].kind
    }

    /// Is any window of spec `idx` currently open?
    pub fn is_open(&self, idx: usize) -> bool {
        self.open[idx] > 0
    }

    /// Total open windows across all specs.
    pub fn open_windows(&self) -> u32 {
        self.open.iter().sum()
    }

    /// Is the access link currently blacked out?
    pub fn link_down(&self) -> bool {
        self.any_open(|k| matches!(k, FaultKind::LinkFlap))
    }

    /// Are descriptor refills currently stalled?
    pub fn refill_stalled(&self) -> bool {
        self.any_open(|k| matches!(k, FaultKind::DescriptorStall))
    }

    /// Current PCIe NAK probability (max over open replay windows; 0 when
    /// none are open).
    pub fn nak_rate(&self) -> f64 {
        self.specs
            .iter()
            .zip(&self.open)
            .filter(|(_, &n)| n > 0)
            .filter_map(|(s, _)| match s.kind {
                FaultKind::PcieReplay { nak_rate } => Some(nak_rate),
                _ => None,
            })
            .fold(0.0, f64::max)
    }

    /// Current memory-bandwidth multiplier (product over open throttle
    /// windows; exactly 1.0 when none are open).
    pub fn throttle_factor(&self) -> f64 {
        self.specs
            .iter()
            .zip(&self.open)
            .filter(|(_, &n)| n > 0)
            .filter_map(|(s, _)| match s.kind {
                FaultKind::MemThrottle { factor } => Some(factor),
                _ => None,
            })
            .product()
    }

    fn any_open(&self, pred: impl Fn(&FaultKind) -> bool) -> bool {
        self.specs
            .iter()
            .zip(&self.open)
            .any(|(s, &n)| n > 0 && pred(&s.kind))
    }

    /// Serialize the evolving state: per-spec open-window refcounts and
    /// the lifetime counters. The specs themselves come from the plan in
    /// the experiment configuration (constructor replay).
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        w.usize(self.open.len());
        for &n in &self.open {
            w.u32(n);
        }
        for &c in &self.counters.windows_opened {
            w.u64(c);
        }
        w.u64(self.counters.link_dropped_packets);
        w.u64(self.counters.deferred_refills);
        w.u64(self.counters.iotlb_flushes);
        w.u64(self.counters.preempt_ns);
        w.u64(self.counters.throttle_windows);
    }

    /// Restore into a state rebuilt from the same plan. The spec count
    /// must match; on any error `self` is untouched.
    pub fn load_state(
        &mut self,
        r: &mut hostcc_sim::SnapReader<'_>,
    ) -> Result<(), hostcc_sim::SnapError> {
        use hostcc_sim::SnapError;
        let n = r.len(4)?;
        if n != self.open.len() {
            return Err(SnapError::Corrupt("fault spec count mismatch"));
        }
        let mut open = Vec::with_capacity(n);
        for _ in 0..n {
            open.push(r.u32()?);
        }
        let mut counters = FaultCounters::default();
        for c in counters.windows_opened.iter_mut() {
            *c = r.u64()?;
        }
        counters.link_dropped_packets = r.u64()?;
        counters.deferred_refills = r.u64()?;
        counters.iotlb_flushes = r.u64()?;
        counters.preempt_ns = r.u64()?;
        counters.throttle_windows = r.u64()?;
        self.open = open;
        self.counters = counters;
        Ok(())
    }
}

/// Goodput accounting around fault windows: bytes delivered per unit time
/// before the first window opens, while any window is open, and after the
/// last window closes. "Recovered" means the post-fault delivery rate is
/// back within 10% of the pre-fault mean.
#[derive(Debug, Clone, Default)]
pub struct RecoveryTracker {
    open_windows: u32,
    first_start_ns: Option<u64>,
    last_end_ns: Option<u64>,
    before: PhaseAccum,
    during: PhaseAccum,
    after: PhaseAccum,
    last_sample_ns: Option<u64>,
}

#[derive(Debug, Clone, Copy, Default)]
struct PhaseAccum {
    bytes: u64,
    ns: u64,
}

impl PhaseAccum {
    fn rate(&self) -> f64 {
        if self.ns == 0 {
            0.0
        } else {
            self.bytes as f64 / self.ns as f64
        }
    }
}

impl RecoveryTracker {
    /// Fresh tracker (call once per run, at metrics arm time).
    pub fn new() -> Self {
        Self::default()
    }

    /// A fault window opened at `now_ns`.
    pub fn on_window_start(&mut self, now_ns: u64) {
        self.open_windows += 1;
        if self.first_start_ns.is_none() {
            self.first_start_ns = Some(now_ns);
        }
    }

    /// A fault window closed at `now_ns`.
    pub fn on_window_end(&mut self, now_ns: u64) {
        self.open_windows = self.open_windows.saturating_sub(1);
        if self.open_windows == 0 {
            self.last_end_ns = Some(now_ns);
        }
    }

    /// Periodic goodput sample: `delivered_bytes_delta` bytes were
    /// delivered since the previous sample. Attributes the interval to the
    /// before/during/after phase by the tracker's current window state.
    pub fn sample(&mut self, now_ns: u64, delivered_bytes_delta: u64) {
        let prev = self.last_sample_ns.replace(now_ns);
        let Some(prev) = prev else { return };
        let dt = now_ns.saturating_sub(prev);
        if dt == 0 {
            return;
        }
        let phase = if self.open_windows > 0 {
            &mut self.during
        } else if self.first_start_ns.is_none() {
            &mut self.before
        } else {
            &mut self.after
        };
        phase.bytes += delivered_bytes_delta;
        phase.ns += dt;
    }

    /// Time from the last window closing until goodput was measured again,
    /// or 0 if no window ever closed.
    fn recovery_ns(&self) -> u64 {
        // The tracker samples at a fixed cadence, so the first post-fault
        // sample bounds recovery detection latency; report the span from
        // window close to the end of the sampled "after" phase as the
        // recovery observation window.
        match self.last_end_ns {
            Some(_) => self.after.ns,
            None => 0,
        }
    }

    /// Serialize the tracker (phase accumulators, window bookkeeping).
    pub fn save_state(&self, w: &mut hostcc_sim::SnapWriter) {
        w.u32(self.open_windows);
        w.opt(&self.first_start_ns, |&v, w| w.u64(v));
        w.opt(&self.last_end_ns, |&v, w| w.u64(v));
        for p in [&self.before, &self.during, &self.after] {
            w.u64(p.bytes);
            w.u64(p.ns);
        }
        w.opt(&self.last_sample_ns, |&v, w| w.u64(v));
    }

    /// Rebuild a tracker from [`save_state`](Self::save_state) output.
    pub fn load_state(r: &mut hostcc_sim::SnapReader<'_>) -> Result<Self, hostcc_sim::SnapError> {
        let open_windows = r.u32()?;
        let first_start_ns = r.opt(|r| r.u64())?;
        let last_end_ns = r.opt(|r| r.u64())?;
        let mut phases = [PhaseAccum::default(); 3];
        for p in phases.iter_mut() {
            p.bytes = r.u64()?;
            p.ns = r.u64()?;
        }
        Ok(RecoveryTracker {
            open_windows,
            first_start_ns,
            last_end_ns,
            before: phases[0],
            during: phases[1],
            after: phases[2],
            last_sample_ns: r.opt(|r| r.u64())?,
        })
    }

    /// Summarise for [`FaultSummary`]. `counters` supplies the per-kind
    /// injection counts.
    pub fn summarize(&self, counters: &FaultCounters) -> FaultSummary {
        let before = self.before.rate();
        let after = self.after.rate();
        FaultSummary {
            windows_injected: counters.total_windows(),
            link_dropped_packets: counters.link_dropped_packets,
            deferred_refills: counters.deferred_refills,
            iotlb_flushes: counters.iotlb_flushes,
            preempt_ns: counters.preempt_ns,
            goodput_before_bps: before * 8e9,
            goodput_during_bps: self.during.rate() * 8e9,
            goodput_after_bps: after * 8e9,
            recovery_observation_ns: self.recovery_ns(),
            recovered: self.after.ns > 0 && before > 0.0 && after >= 0.9 * before,
        }
    }
}

/// What a fault run did to goodput, reported in `RunMetrics` (only when a
/// plan was actually present — zero-fault runs carry no summary so their
/// metrics stay byte-identical).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSummary {
    /// Fault windows opened during the run.
    pub windows_injected: u64,
    /// Packets lost to link-flap blackouts.
    pub link_dropped_packets: u64,
    /// Descriptor refills deferred by stall windows.
    pub deferred_refills: u64,
    /// Full IOTLB flushes issued by invalidation storms.
    pub iotlb_flushes: u64,
    /// Receiver-core time stolen by preemption, ns.
    pub preempt_ns: u64,
    /// Mean delivered goodput before the first fault window, bits/sec.
    pub goodput_before_bps: f64,
    /// Mean delivered goodput while any window was open, bits/sec.
    pub goodput_during_bps: f64,
    /// Mean delivered goodput after the last window closed, bits/sec.
    pub goodput_after_bps: f64,
    /// Length of the sampled post-fault observation window, ns.
    pub recovery_observation_ns: u64,
    /// Post-fault goodput back within 10% of the pre-fault mean.
    pub recovered: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn plan_builders_compose() {
        let plan = FaultPlan::new()
            .one_shot(FaultKind::LinkFlap, ms(1), ms(2))
            .recurring(
                FaultKind::PcieReplay { nak_rate: 0.25 },
                ms(5),
                ms(1),
                ms(3),
                4,
            );
        assert!(!plan.is_empty());
        assert_eq!(plan.window_count(), 5);
        let occ: Vec<u64> = plan.specs[1].occurrences().map(|d| d.as_nanos()).collect();
        assert_eq!(
            occ,
            vec![5_000_000, 8_000_000, 11_000_000, 14_000_000],
            "recurring occurrences are start + k*period"
        );
    }

    #[test]
    fn empty_plan_has_identity_aggregates() {
        let state = FaultState::new(&FaultPlan::new());
        assert!(!state.link_down());
        assert!(!state.refill_stalled());
        assert_eq!(state.nak_rate(), 0.0);
        assert_eq!(state.throttle_factor(), 1.0, "no-throttle must be exact");
        assert_eq!(state.counters.total_windows(), 0);
    }

    #[test]
    fn window_edges_toggle_aggregates() {
        let plan = FaultPlan::new()
            .one_shot(FaultKind::LinkFlap, ms(1), ms(1))
            .one_shot(FaultKind::MemThrottle { factor: 0.5 }, ms(1), ms(1))
            .one_shot(FaultKind::PcieReplay { nak_rate: 0.3 }, ms(1), ms(1));
        let mut state = FaultState::new(&plan);
        assert!(!state.link_down());
        state.begin(0);
        state.begin(1);
        state.begin(2);
        assert!(state.link_down());
        assert_eq!(state.throttle_factor(), 0.5);
        assert_eq!(state.nak_rate(), 0.3);
        state.end(0);
        state.end(1);
        state.end(2);
        assert!(!state.link_down());
        assert_eq!(state.throttle_factor(), 1.0);
        assert_eq!(state.nak_rate(), 0.0);
        assert_eq!(state.counters.total_windows(), 3);
    }

    #[test]
    fn overlapping_windows_of_one_spec_refcount() {
        let plan = FaultPlan::new().recurring(FaultKind::DescriptorStall, ms(0), ms(3), ms(1), 2);
        let mut state = FaultState::new(&plan);
        state.begin(0);
        state.begin(0);
        state.end(0);
        assert!(
            state.refill_stalled(),
            "still one window open after the first closes"
        );
        state.end(0);
        assert!(!state.refill_stalled());
    }

    #[test]
    fn counters_export_stable_names() {
        let mut c = FaultCounters::default();
        c.windows_opened[1] = 2;
        c.link_dropped_packets = 7;
        let mut reg = CounterRegistry::new();
        reg.collect(&c);
        assert_eq!(reg.lifetime("faults.injected.link_flap"), 2);
        assert_eq!(reg.lifetime("faults.link.dropped_packets"), 7);
        assert_eq!(reg.lifetime("faults.injected.pcie_replay"), 0);
    }

    #[test]
    fn recovery_tracker_detects_recovery() {
        let mut t = RecoveryTracker::new();
        // 1 byte/ns before the fault.
        t.sample(0, 0);
        t.sample(100, 100);
        t.sample(200, 100);
        t.on_window_start(200);
        t.sample(300, 10); // degraded during
        t.on_window_end(300);
        t.sample(400, 95); // back to 0.95 byte/ns
        t.sample(500, 95);
        let s = t.summarize(&FaultCounters::default());
        assert!(s.goodput_before_bps > s.goodput_during_bps);
        assert!(s.recovered, "0.95 >= 0.9 * 1.0");
        assert_eq!(s.recovery_observation_ns, 200);
    }

    #[test]
    fn recovery_tracker_flags_failure() {
        let mut t = RecoveryTracker::new();
        t.sample(0, 0);
        t.sample(100, 100);
        t.on_window_start(100);
        t.sample(200, 10);
        t.on_window_end(200);
        t.sample(300, 50); // only half the pre-fault rate
        let s = t.summarize(&FaultCounters::default());
        assert!(!s.recovered);
    }
}
