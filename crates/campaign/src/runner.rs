//! The campaign execution loop: checkpoint, stream, resume.
//!
//! Every grid point advances through the same deterministic *slice
//! schedule*: the checkpoint cadence grid, plus the warm-up boundary
//! (where metrics arm) and the end of measurement. At each boundary the
//! runner snapshots the simulation with
//! [`Simulation::save_checkpoint`], appends one slice record to the
//! point's metrics JSONL, and atomically rewrites both the artifact and
//! the point checkpoint. The checkpoint embeds the metric lines emitted
//! so far, so `--resume` restores the simulation *and* regenerates the
//! artifact prefix byte-for-byte — an interrupted-and-resumed campaign
//! produces artifacts identical to an uninterrupted one.
//!
//! Failure routing: a corrupt or truncated checkpoint is logged and the
//! point restarts from scratch (the checkpoint is redundant state — the
//! manifest can always rebuild it); a watchdog stall records a `failed`
//! journal entry and leaves the last good checkpoint on disk for
//! [`crate::bisect`]; neither takes down the rest of the grid.

use crate::artifact::{append_journal, atomic_write, read_journal, JournalEntry};
use crate::manifest::Manifest;
use crate::{io_err, CampaignError};
use hostcc::fleet::{Fleet, FleetConfig};
use hostcc_host::{RunError, Simulation, TestbedConfig};
use hostcc_sim::{fnv1a_64, RunOutcome, SimTime, SnapError, SnapReader, SnapWriter};
use std::path::{Path, PathBuf};

/// Knobs for one [`execute`] call.
#[derive(Debug, Clone, Default)]
pub struct ExecuteOptions {
    /// Skip journaled points and restore in-flight ones from their
    /// latest checkpoint instead of starting the campaign over.
    pub resume: bool,
    /// Crash-simulation hook for tests and the CI smoke job: stop
    /// abruptly (no journal entry, files left exactly as written) after
    /// this many slice boundaries across the whole campaign.
    pub abort_after_slices: Option<u64>,
}

/// What one [`execute`] call did, per grid point.
#[derive(Debug, Default)]
pub struct RunReport {
    /// Points that ran to completion this call.
    pub completed: Vec<String>,
    /// Points skipped because the journal already records them.
    pub skipped: Vec<String>,
    /// Points restored from a checkpoint (subset of `completed`/`failed`).
    pub resumed: Vec<String>,
    /// Points whose checkpoint was corrupt and restarted from scratch.
    pub fallbacks: Vec<String>,
    /// Points that failed, with the error text (also journaled).
    pub failed: Vec<(String, String)>,
    /// True when `abort_after_slices` fired (simulated crash).
    pub aborted: bool,
}

/// Artifact layout under the campaign output directory.
pub(crate) struct Layout {
    /// Append-only completion journal.
    pub journal: PathBuf,
    /// Per-point metrics JSONL directory.
    pub points: PathBuf,
    /// Per-point checkpoint directory.
    pub checkpoints: PathBuf,
}

impl Layout {
    pub fn new(out: &Path) -> Layout {
        Layout {
            journal: out.join("journal.jsonl"),
            points: out.join("points"),
            checkpoints: out.join("checkpoints"),
        }
    }

    pub fn artifact(&self, label: &str) -> PathBuf {
        self.points.join(format!("{label}.jsonl"))
    }

    pub fn checkpoint(&self, label: &str) -> PathBuf {
        self.checkpoints.join(format!("{label}.ckpt"))
    }

    /// The checkpoint taken at the last slice boundary strictly before
    /// the point's first fault window — bisect's starting state.
    pub fn prefault(&self, label: &str) -> PathBuf {
        self.checkpoints.join(format!("{label}.prefault.ckpt"))
    }

    pub fn create_dirs(&self, out: &Path) -> Result<(), CampaignError> {
        for d in [out, &self.points, &self.checkpoints] {
            std::fs::create_dir_all(d).map_err(|e| io_err(d, e))?;
        }
        Ok(())
    }
}

/// The slice schedule for one point, in absolute nanoseconds: every
/// checkpoint-cadence multiple below the end of measurement, plus the
/// warm-up boundary and the end itself. Identical for fresh and resumed
/// runs — the property that makes resume bit-exact.
pub(crate) fn boundaries(m: &Manifest) -> Vec<u64> {
    let t1 = m.warmup.as_nanos();
    let t2 = t1 + m.measure.as_nanos();
    let step = m.checkpoint_every.as_nanos().max(1);
    let mut b: Vec<u64> = (1..).map(|k| k * step).take_while(|&t| t < t2).collect();
    b.push(t1);
    b.push(t2);
    b.sort_unstable();
    b.dedup();
    b.retain(|&t| t > 0);
    b
}

/// Encode a point checkpoint: the label (sanity check), the metric
/// lines emitted so far, and the simulation checkpoint — all inside one
/// checksummed envelope, so corruption anywhere is detected on open.
fn encode_point(label: &str, lines: &[String], sim_ckpt: &[u8]) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.str(label);
    w.str(&lines.join("\n"));
    w.bytes(sim_ckpt);
    w.into_envelope()
}

/// Decode a point checkpoint back into a restored simulation plus the
/// artifact lines accumulated before the snapshot.
pub(crate) fn decode_point(
    cfg: TestbedConfig,
    label: &str,
    bytes: &[u8],
) -> Result<(Simulation, Vec<String>), SnapError> {
    let mut r = SnapReader::open(bytes)?;
    if r.str()? != label {
        return Err(SnapError::Corrupt("checkpoint label mismatch"));
    }
    let joined = r.str()?.to_string();
    let sim_bytes = r.bytes()?;
    let sim = Simulation::restore_checkpoint(cfg, sim_bytes)?;
    r.finish()?;
    let lines = if joined.is_empty() {
        Vec::new()
    } else {
        joined.lines().map(String::from).collect()
    };
    Ok((sim, lines))
}

/// Decode a point checkpoint back into a restored fleet plus the
/// artifact lines accumulated before the snapshot (the fleet analogue of
/// [`decode_point`]; same envelope, fleet checkpoint in the bytes slot).
fn decode_fleet_point(
    cfg: &FleetConfig,
    label: &str,
    bytes: &[u8],
) -> Result<(Fleet, Vec<String>), RunError> {
    let mut r = SnapReader::open(bytes)?;
    if r.str()? != label {
        return Err(SnapError::Corrupt("checkpoint label mismatch").into());
    }
    let joined = r.str()?.to_string();
    let fleet_bytes = r.bytes()?;
    let fleet = Fleet::restore_checkpoint(cfg, fleet_bytes)?;
    r.finish()?;
    let lines = if joined.is_empty() {
        Vec::new()
    } else {
        joined.lines().map(String::from).collect()
    };
    Ok((fleet, lines))
}

/// Render the final-metrics JSONL line for a completed fleet point:
/// aggregates over every host, plus the engine's epoch accounting. The
/// aggregate throughput carries its IEEE-754 bit pattern so artifact
/// diffs stay exact, same as the single-host final line. Placement-
/// derived numbers (per-shard totals, imbalance) are deliberately
/// absent: artifacts must be bit-identical under any host→shard
/// assignment.
fn fleet_final_line(t2: u64, fleet: &Fleet, per_host: &[hostcc_host::RunMetrics]) -> String {
    let delivered: u64 = per_host.iter().map(|m| m.delivered_packets).sum();
    let payload: u64 = per_host.iter().map(|m| m.delivered_payload_bytes).sum();
    let drops: u64 = per_host.iter().map(|m| m.host_drops()).sum();
    let retransmits: u64 = per_host.iter().map(|m| m.retransmits).sum();
    let gbps: f64 = per_host.iter().map(|m| m.app_throughput_gbps()).sum();
    format!(
        "{{\"t_ns\":{t2},\"final\":true,\"fleet_hosts\":{},\
         \"delivered_packets\":{delivered},\"delivered_payload_bytes\":{payload},\
         \"drops\":{drops},\"retransmits\":{retransmits},\
         \"aggregate_gbps\":{gbps:.3},\"aggregate_bits\":{},\
         \"epochs\":{},\"super_epochs\":{}}}",
        per_host.len(),
        gbps.to_bits(),
        fleet.epochs(),
        fleet.super_epochs(),
    )
}

/// Render the final-metrics JSONL line for a completed point. Floats are
/// carried as IEEE-754 bit patterns alongside the readable value, so
/// artifact diffs are exact.
fn final_line(t2: u64, m: &hostcc_host::RunMetrics) -> String {
    format!(
        "{{\"t_ns\":{t2},\"final\":true,\"delivered_packets\":{},\
         \"delivered_payload_bytes\":{},\"drops\":{},\"retransmits\":{},\
         \"iotlb_misses\":{},\"p99_us\":{:.3},\"p99_bits\":{}}}",
        m.delivered_packets,
        m.delivered_payload_bytes,
        m.host_drops(),
        m.retransmits,
        m.iotlb_misses,
        m.host_delay_p99_us(),
        m.host_delay_p99_us().to_bits(),
    )
}

/// Execute (or resume) a campaign. `log` receives human-facing progress
/// lines; artifacts land under `out`. Returns the per-point report; the
/// only hard errors are filesystem failures and manifest-level problems
/// — a stalled or checkpoint-corrupt point degrades gracefully instead.
pub fn execute(
    m: &Manifest,
    out: &Path,
    opts: &ExecuteOptions,
    log: &mut dyn FnMut(&str),
) -> Result<RunReport, CampaignError> {
    let layout = Layout::new(out);
    layout.create_dirs(out)?;
    let mut report = RunReport::default();

    let done: std::collections::BTreeSet<String> = if opts.resume {
        let (entries, torn) = read_journal(&layout.journal)?;
        if torn > 0 {
            log(&format!(
                "journal: dropped {torn} torn trailing line(s) from an interrupted write"
            ));
            // Compact the journal to the parsable entries, atomically,
            // so this run's appends cannot merge into the torn tail.
            let mut body = String::new();
            for e in &entries {
                body.push_str(&e.to_line());
                body.push('\n');
            }
            atomic_write(&layout.journal, body.as_bytes())?;
        }
        entries.into_iter().map(|e| e.label).collect()
    } else {
        // A fresh (non-resume) execution starts the campaign over.
        if layout.journal.exists() {
            std::fs::write(&layout.journal, b"").map_err(|e| io_err(&layout.journal, e))?;
        }
        Default::default()
    };

    let bounds = boundaries(m);
    let t1 = m.warmup.as_nanos();
    let t2 = t1 + m.measure.as_nanos();
    let mut slices_done: u64 = 0;

    'points: for p in m.points() {
        if done.contains(&p.label) {
            report.skipped.push(p.label.clone());
            continue;
        }
        if p.fleet.is_some() {
            let aborted = run_fleet_point(
                m,
                &p,
                &layout,
                opts,
                &bounds,
                (t1, t2),
                &mut slices_done,
                &mut report,
                log,
            )?;
            if aborted {
                return Ok(report);
            }
            continue;
        }
        let cfg = m.build_config(&p)?;
        cfg.validate().map_err(|source| CampaignError::Run {
            label: p.label.clone(),
            source: RunError::from(source),
        })?;
        let earliest_fault: Option<u64> = cfg
            .faults
            .specs
            .iter()
            .flat_map(|s| s.occurrences())
            .map(|d| d.as_nanos())
            .min();

        // Restore from the latest checkpoint, or start fresh — falling
        // back to fresh (with a warning) when the checkpoint is corrupt
        // or truncated. Never a panic: every decode failure is a typed
        // SnapError routed here.
        let ckpt_path = layout.checkpoint(&p.label);
        let mut restored = false;
        let (mut sim, mut lines) = if opts.resume && ckpt_path.exists() {
            let raw = std::fs::read(&ckpt_path).map_err(|e| io_err(&ckpt_path, e))?;
            match decode_point(cfg.clone(), &p.label, &raw) {
                Ok((sim, lines)) => {
                    restored = true;
                    report.resumed.push(p.label.clone());
                    log(&format!(
                        "{}: restored checkpoint at {} ns ({} slice(s) already recorded)",
                        p.label,
                        sim.now().as_nanos(),
                        lines.len()
                    ));
                    (sim, lines)
                }
                Err(e) => {
                    log(&format!(
                        "{}: checkpoint unusable ({e}); restarting point from scratch",
                        p.label
                    ));
                    report.fallbacks.push(p.label.clone());
                    (Simulation::new(cfg.clone()), Vec::new())
                }
            }
        } else {
            (Simulation::new(cfg.clone()), Vec::new())
        };
        if !restored {
            // Clear stale artifacts from any earlier attempt.
            for stale in [&ckpt_path, &layout.prefault(&p.label)] {
                match std::fs::remove_file(stale) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => return Err(io_err(stale, e)),
                }
            }
        }
        // Regenerate the artifact from the checkpoint's embedded lines
        // (fresh runs truncate it) so artifact and state always agree.
        atomic_write(&layout.artifact(&p.label), render(&lines).as_bytes())?;

        let resumed_from = sim.now().as_nanos();
        for &b in bounds.iter().filter(|&&b| b > resumed_from) {
            if let Some(limit) = opts.abort_after_slices {
                if slices_done >= limit {
                    report.aborted = true;
                    log(&format!(
                        "aborting after {slices_done} slice(s) (simulated crash)"
                    ));
                    return Ok(report);
                }
            }
            let bt = SimTime::from_nanos(b);
            if let RunOutcome::Stalled { at } = sim.run_to(bt) {
                let entry = JournalEntry {
                    label: p.label.clone(),
                    status: "failed".to_string(),
                    t_ns: at.as_nanos(),
                };
                append_journal(&layout.journal, &entry)?;
                let msg = format!(
                    "watchdog stall at {} ns; last checkpoint kept for `campaign bisect`",
                    at.as_nanos()
                );
                log(&format!("{}: {msg}", p.label));
                report.failed.push((p.label.clone(), msg));
                continue 'points;
            }
            if b == t1 {
                sim.world_mut().arm_metrics(bt);
            }
            let sim_ckpt = sim.save_checkpoint().map_err(|e| CampaignError::Run {
                label: p.label.clone(),
                source: RunError::from(e),
            })?;
            lines.push(format!(
                "{{\"t_ns\":{b},\"digest\":{},\"dispatched\":{}}}",
                fnv1a_64(&sim_ckpt),
                sim.dispatched_total()
            ));
            if b == t2 {
                lines.push(final_line(t2, &sim.world_mut().snapshot(bt)));
            }
            let envelope = encode_point(&p.label, &lines, &sim_ckpt);
            if earliest_fault.is_some_and(|ef| b < ef) {
                atomic_write(&layout.prefault(&p.label), &envelope)?;
            }
            atomic_write(&ckpt_path, &envelope)?;
            atomic_write(&layout.artifact(&p.label), render(&lines).as_bytes())?;
            slices_done += 1;
        }

        append_journal(
            &layout.journal,
            &JournalEntry {
                label: p.label.clone(),
                status: "done".to_string(),
                t_ns: t2,
            },
        )?;
        log(&format!(
            "{}: done ({} artifact lines)",
            p.label,
            lines.len()
        ));
        report.completed.push(p.label.clone());
    }
    Ok(report)
}

/// Execute (or resume) one fleet grid point through the same slice
/// schedule as the single-host path: run to each boundary, checkpoint
/// the whole fleet, append a digest line, and atomically rewrite the
/// artifact + checkpoint pair. After every boundary the engine is
/// cost-rebalanced onto the measured per-host event counters —
/// observationally inert (placement never feeds the simulation), so the
/// artifacts stay byte-identical with or without it, interrupted or not.
/// Returns `Ok(true)` when the simulated-crash hook fired.
#[allow(clippy::too_many_arguments)]
fn run_fleet_point(
    m: &Manifest,
    p: &crate::manifest::PointSpec,
    layout: &Layout,
    opts: &ExecuteOptions,
    bounds: &[u64],
    (t1, t2): (u64, u64),
    slices_done: &mut u64,
    report: &mut RunReport,
    log: &mut dyn FnMut(&str),
) -> Result<bool, CampaignError> {
    let run_err = |source: RunError| CampaignError::Run {
        label: p.label.clone(),
        source,
    };
    let cfg = m.build_fleet_config(p)?;
    cfg.validate().map_err(run_err)?;
    let earliest_fault: Option<u64> = cfg
        .base
        .faults
        .specs
        .iter()
        .flat_map(|s| s.occurrences())
        .map(|d| d.as_nanos())
        .min();

    let ckpt_path = layout.checkpoint(&p.label);
    let mut restored = false;
    let (mut fleet, mut lines) = if opts.resume && ckpt_path.exists() {
        let raw = std::fs::read(&ckpt_path).map_err(|e| io_err(&ckpt_path, e))?;
        match decode_fleet_point(&cfg, &p.label, &raw) {
            Ok((fleet, lines)) => {
                restored = true;
                report.resumed.push(p.label.clone());
                log(&format!(
                    "{}: restored fleet checkpoint at {} ns ({} slice(s) already recorded)",
                    p.label,
                    fleet.now().as_nanos(),
                    lines.len()
                ));
                (fleet, lines)
            }
            Err(e) => {
                log(&format!(
                    "{}: checkpoint unusable ({e}); restarting point from scratch",
                    p.label
                ));
                report.fallbacks.push(p.label.clone());
                (Fleet::new(&cfg).map_err(run_err)?, Vec::new())
            }
        }
    } else {
        (Fleet::new(&cfg).map_err(run_err)?, Vec::new())
    };
    if !restored {
        for stale in [&ckpt_path, &layout.prefault(&p.label)] {
            match std::fs::remove_file(stale) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(io_err(stale, e)),
            }
        }
    }
    atomic_write(&layout.artifact(&p.label), render(&lines).as_bytes())?;

    let resumed_from = fleet.now().as_nanos();
    for &b in bounds.iter().filter(|&&b| b > resumed_from) {
        if let Some(limit) = opts.abort_after_slices {
            if *slices_done >= limit {
                report.aborted = true;
                log(&format!(
                    "aborting after {} slice(s) (simulated crash)",
                    *slices_done
                ));
                return Ok(true);
            }
        }
        let bt = SimTime::from_nanos(b);
        if let Err(e) = fleet.run_to(bt) {
            let at = match &e {
                RunError::Stalled { at, .. } => at.as_nanos(),
                _ => b,
            };
            let entry = JournalEntry {
                label: p.label.clone(),
                status: "failed".to_string(),
                t_ns: at,
            };
            append_journal(&layout.journal, &entry)?;
            let msg = format!("{e}; last checkpoint kept");
            log(&format!("{}: {msg}", p.label));
            report.failed.push((p.label.clone(), msg));
            return Ok(false);
        }
        if b == t1 {
            for h in fleet.hosts_mut() {
                h.sim_mut().world_mut().arm_metrics(bt);
            }
        }
        let fleet_ckpt = fleet
            .save_checkpoint()
            .map_err(|e| run_err(RunError::from(e)))?;
        lines.push(format!(
            "{{\"t_ns\":{b},\"digest\":{},\"dispatched\":{}}}",
            fnv1a_64(&fleet_ckpt),
            fleet.dispatched_total()
        ));
        if b == t2 {
            let per_host: Vec<hostcc_host::RunMetrics> = fleet
                .hosts_mut()
                .iter_mut()
                .map(|h| h.sim_mut().world_mut().snapshot(bt))
                .collect();
            lines.push(fleet_final_line(t2, &fleet, &per_host));
        }
        let envelope = encode_point(&p.label, &lines, &fleet_ckpt);
        if earliest_fault.is_some_and(|ef| b < ef) {
            atomic_write(&layout.prefault(&p.label), &envelope)?;
        }
        atomic_write(&ckpt_path, &envelope)?;
        atomic_write(&layout.artifact(&p.label), render(&lines).as_bytes())?;
        *slices_done += 1;
        fleet.rebalance();
    }

    append_journal(
        &layout.journal,
        &JournalEntry {
            label: p.label.clone(),
            status: "done".to_string(),
            t_ns: t2,
        },
    )?;
    log(&format!(
        "{}: done ({} artifact lines)",
        p.label,
        lines.len()
    ));
    report.completed.push(p.label.clone());
    Ok(false)
}

/// Join artifact lines with a trailing newline (empty file for no lines).
fn render(lines: &[String]) -> String {
    if lines.is_empty() {
        String::new()
    } else {
        let mut s = lines.join("\n");
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "hostcc-campaign-runner-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn tiny_manifest() -> Manifest {
        Manifest::parse(
            "name = tiny\n\
             warmup_ms = 1\n\
             measure_ms = 2\n\
             checkpoint_every_ms = 1\n\
             scenarios = incast\n\
             seeds = 7\n",
        )
        .unwrap()
    }

    fn quiet() -> impl FnMut(&str) {
        |_msg: &str| {}
    }

    #[test]
    fn boundary_grid_includes_arm_and_end() {
        let m = tiny_manifest();
        assert_eq!(boundaries(&m), vec![1_000_000, 2_000_000, 3_000_000]);
        let m = Manifest::parse(
            "warmup_ms = 5\nmeasure_ms = 10\ncheckpoint_every_ms = 4\nscenarios = incast\n",
        )
        .unwrap();
        // Cadence multiples below 15 ms, plus t1 = 5 ms and t2 = 15 ms.
        assert_eq!(
            boundaries(&m),
            vec![4_000_000, 5_000_000, 8_000_000, 12_000_000, 15_000_000]
        );
    }

    #[test]
    fn completes_and_journals_a_tiny_campaign() {
        let m = tiny_manifest();
        let d = tmpdir("complete");
        let mut log = quiet();
        let r = execute(&m, &d, &ExecuteOptions::default(), &mut log).unwrap();
        assert_eq!(r.completed, vec!["incast-s7-none-o0"]);
        assert!(r.failed.is_empty() && !r.aborted);
        let (journal, _) = read_journal(&d.join("journal.jsonl")).unwrap();
        assert_eq!(journal.len(), 1);
        assert_eq!(journal[0].status, "done");
        let art = fs::read_to_string(d.join("points/incast-s7-none-o0.jsonl")).unwrap();
        // 3 slice records + the final metrics line.
        assert_eq!(art.lines().count(), 4, "{art}");
        assert!(art.lines().last().unwrap().contains("\"final\":true"));
        // Resume after completion: everything skipped, artifact untouched.
        let r = execute(
            &m,
            &d,
            &ExecuteOptions {
                resume: true,
                ..Default::default()
            },
            &mut log,
        )
        .unwrap();
        assert_eq!(r.skipped, vec!["incast-s7-none-o0"]);
        assert!(r.completed.is_empty());
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn kill_and_resume_reproduces_artifacts_byte_for_byte() {
        let m = tiny_manifest();
        let reference = tmpdir("ref");
        let interrupted = tmpdir("int");
        let mut log = quiet();
        execute(&m, &reference, &ExecuteOptions::default(), &mut log).unwrap();

        // Crash after two slice boundaries, then resume to completion.
        let r = execute(
            &m,
            &interrupted,
            &ExecuteOptions {
                resume: false,
                abort_after_slices: Some(2),
            },
            &mut log,
        )
        .unwrap();
        assert!(r.aborted);
        assert!(r.completed.is_empty());
        let r = execute(
            &m,
            &interrupted,
            &ExecuteOptions {
                resume: true,
                ..Default::default()
            },
            &mut log,
        )
        .unwrap();
        assert_eq!(r.resumed, vec!["incast-s7-none-o0"]);
        assert_eq!(r.completed, vec!["incast-s7-none-o0"]);

        let a = fs::read(reference.join("points/incast-s7-none-o0.jsonl")).unwrap();
        let b = fs::read(interrupted.join("points/incast-s7-none-o0.jsonl")).unwrap();
        assert_eq!(a, b, "resumed artifact must be byte-identical");
        let _ = fs::remove_dir_all(&reference);
        let _ = fs::remove_dir_all(&interrupted);
    }

    fn tiny_fleet_manifest() -> Manifest {
        Manifest::parse(
            "name = tinyfleet\n\
             warmup_ms = 1\n\
             measure_ms = 2\n\
             checkpoint_every_ms = 1\n\
             scenarios = fleet\n\
             seeds = 3\n\
             fleet_hosts = 4\n\
             fleet_shards = 2\n\
             fleet_topology = tree:2\n",
        )
        .unwrap()
    }

    #[test]
    fn fleet_point_completes_with_aggregate_final_line() {
        let m = tiny_fleet_manifest();
        let d = tmpdir("fleet");
        let mut log = quiet();
        let r = execute(&m, &d, &ExecuteOptions::default(), &mut log).unwrap();
        assert_eq!(r.completed, vec!["fleet-h4-x2-tree.2-s3-none-o0"]);
        assert!(r.failed.is_empty() && !r.aborted);
        let art = fs::read_to_string(d.join("points/fleet-h4-x2-tree.2-s3-none-o0.jsonl")).unwrap();
        assert_eq!(art.lines().count(), 4, "{art}");
        let last = art.lines().last().unwrap();
        assert!(last.contains("\"final\":true"), "{last}");
        assert!(last.contains("\"fleet_hosts\":4"), "{last}");
        assert!(last.contains("\"aggregate_gbps\":"), "{last}");
        assert!(last.contains("\"epochs\":"), "{last}");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn fleet_kill_and_resume_reproduces_artifacts_byte_for_byte() {
        let m = tiny_fleet_manifest();
        let reference = tmpdir("fref");
        let interrupted = tmpdir("fint");
        let mut log = quiet();
        execute(&m, &reference, &ExecuteOptions::default(), &mut log).unwrap();

        let r = execute(
            &m,
            &interrupted,
            &ExecuteOptions {
                resume: false,
                abort_after_slices: Some(2),
            },
            &mut log,
        )
        .unwrap();
        assert!(r.aborted);
        assert!(r.completed.is_empty());
        let r = execute(
            &m,
            &interrupted,
            &ExecuteOptions {
                resume: true,
                ..Default::default()
            },
            &mut log,
        )
        .unwrap();
        assert_eq!(r.resumed, vec!["fleet-h4-x2-tree.2-s3-none-o0"]);
        assert_eq!(r.completed, vec!["fleet-h4-x2-tree.2-s3-none-o0"]);

        let a = fs::read(reference.join("points/fleet-h4-x2-tree.2-s3-none-o0.jsonl")).unwrap();
        let b = fs::read(interrupted.join("points/fleet-h4-x2-tree.2-s3-none-o0.jsonl")).unwrap();
        assert_eq!(a, b, "resumed fleet artifact must be byte-identical");
        let _ = fs::remove_dir_all(&reference);
        let _ = fs::remove_dir_all(&interrupted);
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_scratch_and_still_completes() {
        let m = tiny_manifest();
        let reference = tmpdir("cref");
        let damaged = tmpdir("cdam");
        let mut log = quiet();
        execute(&m, &reference, &ExecuteOptions::default(), &mut log).unwrap();
        execute(
            &m,
            &damaged,
            &ExecuteOptions {
                resume: false,
                abort_after_slices: Some(2),
            },
            &mut log,
        )
        .unwrap();
        // Flip a byte deep in the checkpoint payload.
        let ckpt = damaged.join("checkpoints/incast-s7-none-o0.ckpt");
        let mut raw = fs::read(&ckpt).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x40;
        fs::write(&ckpt, &raw).unwrap();

        let mut warnings = Vec::new();
        let mut log = |msg: &str| warnings.push(msg.to_string());
        let r = execute(
            &m,
            &damaged,
            &ExecuteOptions {
                resume: true,
                ..Default::default()
            },
            &mut log,
        )
        .unwrap();
        assert_eq!(r.fallbacks, vec!["incast-s7-none-o0"]);
        assert_eq!(r.completed, vec!["incast-s7-none-o0"]);
        assert!(
            warnings.iter().any(|w| w.contains("checkpoint unusable")),
            "{warnings:?}"
        );
        let a = fs::read(reference.join("points/incast-s7-none-o0.jsonl")).unwrap();
        let b = fs::read(damaged.join("points/incast-s7-none-o0.jsonl")).unwrap();
        assert_eq!(
            a, b,
            "restart-from-scratch still converges to the reference"
        );
        let _ = fs::remove_dir_all(&reference);
        let _ = fs::remove_dir_all(&damaged);
    }

    #[test]
    fn truncated_checkpoint_is_a_typed_fallback_too() {
        let m = tiny_manifest();
        let d = tmpdir("trunc");
        let mut log = quiet();
        execute(
            &m,
            &d,
            &ExecuteOptions {
                resume: false,
                abort_after_slices: Some(1),
            },
            &mut log,
        )
        .unwrap();
        let ckpt = d.join("checkpoints/incast-s7-none-o0.ckpt");
        let raw = fs::read(&ckpt).unwrap();
        fs::write(&ckpt, &raw[..raw.len() / 3]).unwrap();
        let r = execute(
            &m,
            &d,
            &ExecuteOptions {
                resume: true,
                ..Default::default()
            },
            &mut log,
        )
        .unwrap();
        assert_eq!(r.fallbacks.len(), 1);
        assert_eq!(r.completed.len(), 1);
        let _ = fs::remove_dir_all(&d);
    }
}
