//! Checkpointed, resumable experiment campaigns.
//!
//! A campaign is a grid of runs — scenario × seed × fault-plan ×
//! config-override — described by a small text [`Manifest`] and executed
//! by a persistent [`runner`] loop that is designed to be killed at any
//! instant and resumed without losing or corrupting anything:
//!
//! * each in-flight run is checkpointed every `checkpoint_every_ms` of
//!   simulated time via [`hostcc_host::Simulation::save_checkpoint`],
//!   and the campaign-level checkpoint embeds the metric lines emitted
//!   so far, so a resumed run regenerates its artifact byte-for-byte;
//! * every artifact (metrics JSONL, checkpoints) is written with
//!   write-to-temp + fsync + atomic-rename — a `SIGKILL` leaves either
//!   the old complete file or the new complete file, never a torn one;
//! * finished points are recorded in an append-only completion journal
//!   that tolerates a truncated trailing line (the one write that cannot
//!   be made atomic without rewriting the whole file);
//! * a corrupt or truncated checkpoint is a warning plus a
//!   restart-from-scratch of that one point — graceful degradation,
//!   never a panic, and never a lost campaign.
//!
//! The [`bisect`] module adds chaos bisect-in-time: restore the
//! checkpoint taken just before a point's first fault window, replay it
//! twice — factually and counterfactually (faults suppressed) — in fine
//! time quanta, and report the first slot where the two state digests
//! diverge.

pub mod artifact;
pub mod bisect;
pub mod manifest;
pub mod runner;

pub use bisect::{bisect, BisectReport};
pub use manifest::{FleetSpec, Manifest, PointSpec};
pub use runner::{execute, ExecuteOptions, RunReport};

use hostcc_host::RunError;
use std::path::PathBuf;

/// Typed campaign failures. Everything a malformed manifest, a hostile
/// filesystem or a stalled simulation can do surfaces here — the runner
/// itself never panics.
#[derive(Debug)]
pub enum CampaignError {
    /// An I/O operation failed; carries the path for diagnosis.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The manifest failed to parse.
    Manifest {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// A scenario name the campaign registry does not know.
    UnknownScenario(String),
    /// A fault name outside replay|flap|stall|storm|throttle|preempt|none.
    UnknownFault(String),
    /// An override entry that is not `key=value` with a known key.
    BadOverride(String),
    /// `campaign bisect` was pointed at a label not in the manifest grid.
    UnknownPoint(String),
    /// A single-host operation (bisect) was pointed at a fleet point.
    FleetPoint(String),
    /// Bisect needs a pre-fault checkpoint that was never written (the
    /// point has no faults, or the campaign has not run yet).
    MissingCheckpoint(String),
    /// A simulation failed in a way resume cannot route around.
    Run {
        /// The grid point's label.
        label: String,
        /// The underlying run error.
        source: RunError,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            CampaignError::Manifest { line, reason } => {
                write!(f, "manifest line {line}: {reason}")
            }
            CampaignError::UnknownScenario(name) => {
                write!(
                    f,
                    "unknown scenario `{name}` (expected one of {})",
                    manifest::SCENARIO_NAMES.join(", ")
                )
            }
            CampaignError::UnknownFault(name) => {
                write!(
                    f,
                    "unknown fault `{name}` \
                     (expected none|replay|flap|stall|storm|throttle|preempt)"
                )
            }
            CampaignError::BadOverride(entry) => {
                write!(
                    f,
                    "bad override `{entry}` (expected none or \
                     key=value[;key=value...] with keys \
                     threads|senders|antagonists|iommu)"
                )
            }
            CampaignError::UnknownPoint(label) => {
                write!(f, "no grid point labelled `{label}` in this manifest")
            }
            CampaignError::FleetPoint(label) => {
                write!(
                    f,
                    "point `{label}` is a fleet point; this operation is \
                     single-host only (bisect a scenario point instead)"
                )
            }
            CampaignError::MissingCheckpoint(label) => {
                write!(
                    f,
                    "no pre-fault checkpoint for `{label}` — run the campaign \
                     first, and note bisect needs a point with a fault plan"
                )
            }
            CampaignError::Run { label, source } => {
                write!(f, "point `{label}`: {source}")
            }
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Io { source, .. } => Some(source),
            CampaignError::Run { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Attach a path to an `io::Error` (every I/O callsite goes through this
/// so `CampaignError::Io` always names the file involved).
pub(crate) fn io_err(path: &std::path::Path, source: std::io::Error) -> CampaignError {
    CampaignError::Io {
        path: path.to_path_buf(),
        source,
    }
}
