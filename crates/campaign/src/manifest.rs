//! The campaign manifest: a small line-based text format describing a
//! scenario × seed × fault × override grid.
//!
//! ```text
//! # smoke.campaign — anything after '#' is a comment
//! name = smoke
//! warmup_ms = 5
//! measure_ms = 10
//! checkpoint_every_ms = 5
//! scenarios = incast, antagonist-8, fleet
//! seeds = 1, 2
//! faults = none, replay
//! overrides = none, threads=4;iommu=off
//! fleet_hosts = 32, 64          # expands the `fleet` scenario only
//! fleet_shards = 1, 4
//! fleet_topology = tree:4, rack:16
//! ```
//!
//! The grid is the cartesian product in deterministic nesting order
//! (scenario outermost, override innermost), so point labels and the
//! completion journal are stable across re-parses — the property resume
//! depends on. The `fleet` scenario expands through three extra axes
//! (hosts × shards × topology) nested between the scenario and the seed;
//! the other scenarios ignore them.

use crate::CampaignError;
use hostcc::fleet::{FleetConfig, FleetTopology};
use hostcc::scenarios;
use hostcc::{FaultKind, TestbedConfig};
use hostcc_sim::SimDuration;
use std::path::Path;

/// Scenario names the campaign grid accepts (`antagonist-N` for any N).
pub const SCENARIO_NAMES: &[&str] = &[
    "baseline",
    "incast",
    "antagonist-N",
    "blindspot",
    "chaos-replay",
    "chaos-flap",
    "chaos-invalidate",
    "fleet",
];

/// A parsed campaign manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Campaign name (artifact prefix; informational).
    pub name: String,
    /// Simulated warm-up discarded from the metrics.
    pub warmup: SimDuration,
    /// Simulated measurement interval.
    pub measure: SimDuration,
    /// Checkpoint cadence in simulated time. Also the slice grid: the
    /// runner always drives runs in these slices (checkpoint or not) so
    /// an interrupted-and-resumed run replays the identical schedule.
    pub checkpoint_every: SimDuration,
    /// Scenario names (outermost grid axis).
    pub scenarios: Vec<String>,
    /// RNG seeds.
    pub seeds: Vec<u64>,
    /// Fault-plan names (`none` for no faults).
    pub faults: Vec<String>,
    /// Config-override specs (`none` or `key=value[;key=value...]`).
    pub overrides: Vec<String>,
    /// Host counts the `fleet` scenario expands through.
    pub fleet_hosts: Vec<u32>,
    /// Shard (worker-thread) counts the `fleet` scenario expands through.
    pub fleet_shards: Vec<u32>,
    /// Topology specs (`ring:K`, `tree:K`, `rack:K`) the `fleet`
    /// scenario expands through.
    pub fleet_topologies: Vec<String>,
}

/// One grid point: everything needed to build its configuration and to
/// name its artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSpec {
    /// Position in the deterministic grid order.
    pub index: usize,
    /// Scenario name.
    pub scenario: String,
    /// RNG seed.
    pub seed: u64,
    /// Fault-plan name.
    pub fault: String,
    /// Index into [`Manifest::overrides`].
    pub override_idx: usize,
    /// The override spec itself.
    pub override_spec: String,
    /// Fleet axes, for points of the `fleet` scenario only.
    pub fleet: Option<FleetSpec>,
    /// Stable label: `{scenario}-s{seed}-{fault}-o{override_idx}`, with
    /// `-h{hosts}-x{shards}-{topology}` spliced after the scenario for
    /// fleet points (`:` becomes `.`). Restricted to `[a-z0-9.+=;-]`, so
    /// it is safe as a filename and needs no escaping inside the
    /// hand-rolled JSON artifacts.
    pub label: String,
}

/// The fleet axes of one `fleet` grid point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSpec {
    /// Host count.
    pub hosts: u32,
    /// Worker-thread count.
    pub shards: u32,
    /// Topology spec as written in the manifest (`tree:4`, …).
    pub topology: String,
}

impl Manifest {
    /// Parse a manifest from text. Unknown keys, unparsable integers and
    /// unknown scenario/fault/override names are all typed errors.
    pub fn parse(text: &str) -> Result<Manifest, CampaignError> {
        let mut m = Manifest {
            name: "campaign".to_string(),
            warmup: SimDuration::from_millis(5),
            measure: SimDuration::from_millis(10),
            checkpoint_every: SimDuration::from_millis(5),
            scenarios: Vec::new(),
            seeds: vec![1],
            faults: vec!["none".to_string()],
            overrides: vec!["none".to_string()],
            fleet_hosts: vec![8],
            fleet_shards: vec![1],
            fleet_topologies: vec!["tree:4".to_string()],
        };
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(CampaignError::Manifest {
                    line: lineno,
                    reason: format!("expected `key = value`, got `{line}`"),
                });
            };
            let (key, value) = (key.trim(), value.trim());
            let ms = |v: &str| -> Result<SimDuration, CampaignError> {
                v.parse::<u64>().map(SimDuration::from_millis).map_err(|_| {
                    CampaignError::Manifest {
                        line: lineno,
                        reason: format!("`{key}` wants an integer millisecond count, got `{v}`"),
                    }
                })
            };
            let list = |v: &str| -> Vec<String> {
                v.split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect()
            };
            match key {
                "name" => m.name = value.to_string(),
                "warmup_ms" => m.warmup = ms(value)?,
                "measure_ms" => m.measure = ms(value)?,
                "checkpoint_every_ms" => m.checkpoint_every = ms(value)?,
                "scenarios" => m.scenarios = list(value),
                "faults" => m.faults = list(value),
                "overrides" => m.overrides = list(value),
                "seeds" => {
                    m.seeds = Vec::new();
                    for s in list(value) {
                        m.seeds
                            .push(s.parse::<u64>().map_err(|_| CampaignError::Manifest {
                                line: lineno,
                                reason: format!("`seeds` wants integers, got `{s}`"),
                            })?);
                    }
                }
                "fleet_hosts" | "fleet_shards" => {
                    let mut out = Vec::new();
                    for s in list(value) {
                        out.push(s.parse::<u32>().map_err(|_| CampaignError::Manifest {
                            line: lineno,
                            reason: format!("`{key}` wants integers, got `{s}`"),
                        })?);
                    }
                    if key == "fleet_hosts" {
                        m.fleet_hosts = out;
                    } else {
                        m.fleet_shards = out;
                    }
                }
                "fleet_topology" => {
                    for t in list(value) {
                        FleetTopology::parse(&t).map_err(|reason| CampaignError::Manifest {
                            line: lineno,
                            reason,
                        })?;
                    }
                    m.fleet_topologies = list(value);
                }
                other => {
                    return Err(CampaignError::Manifest {
                        line: lineno,
                        reason: format!("unknown key `{other}`"),
                    });
                }
            }
        }
        if m.scenarios.is_empty() {
            return Err(CampaignError::Manifest {
                line: 0,
                reason: "`scenarios` must list at least one scenario".to_string(),
            });
        }
        if m.seeds.is_empty() || m.faults.is_empty() || m.overrides.is_empty() {
            return Err(CampaignError::Manifest {
                line: 0,
                reason: "`seeds`, `faults` and `overrides` must be non-empty".to_string(),
            });
        }
        if m.checkpoint_every.as_nanos() == 0 || m.measure.as_nanos() == 0 {
            return Err(CampaignError::Manifest {
                line: 0,
                reason: "`checkpoint_every_ms` and `measure_ms` must be positive".to_string(),
            });
        }
        if m.scenarios.iter().any(|s| s == "fleet")
            && (m.fleet_hosts.is_empty() || m.fleet_shards.is_empty())
        {
            return Err(CampaignError::Manifest {
                line: 0,
                reason: "`fleet_hosts` and `fleet_shards` must be non-empty".to_string(),
            });
        }
        // Validate every grid point now, so a typo fails the whole
        // campaign up front instead of mid-run at point 37. Fleet points
        // get the full fleet validation (hosts/shards/topology bounds and
        // every derived host configuration).
        for p in m.points() {
            if p.fleet.is_some() {
                let cfg = m.build_fleet_config(&p)?;
                cfg.validate().map_err(|source| CampaignError::Run {
                    label: p.label.clone(),
                    source,
                })?;
            } else {
                m.build_config(&p)?;
            }
        }
        Ok(m)
    }

    /// Load and parse a manifest file.
    pub fn load(path: &Path) -> Result<Manifest, CampaignError> {
        let text = std::fs::read_to_string(path).map_err(|e| crate::io_err(path, e))?;
        Manifest::parse(&text)
    }

    /// The grid, in deterministic order: scenarios ▸ (fleet hosts ▸
    /// shards ▸ topology, for the `fleet` scenario) ▸ seeds ▸ faults ▸
    /// overrides, innermost fastest.
    pub fn points(&self) -> Vec<PointSpec> {
        let mut out = Vec::new();
        for scenario in &self.scenarios {
            let fleet_axes: Vec<Option<FleetSpec>> = if scenario == "fleet" {
                let mut axes = Vec::new();
                for &hosts in &self.fleet_hosts {
                    for &shards in &self.fleet_shards {
                        for topo in &self.fleet_topologies {
                            axes.push(Some(FleetSpec {
                                hosts,
                                shards,
                                topology: topo.clone(),
                            }));
                        }
                    }
                }
                axes
            } else {
                vec![None]
            };
            for fleet in &fleet_axes {
                let prefix = match fleet {
                    Some(f) => format!(
                        "{scenario}-h{}-x{}-{}",
                        f.hosts,
                        f.shards,
                        f.topology.replace(':', ".")
                    ),
                    None => scenario.clone(),
                };
                for &seed in &self.seeds {
                    for fault in &self.faults {
                        for (oi, ov) in self.overrides.iter().enumerate() {
                            let label = format!("{prefix}-s{seed}-{fault}-o{oi}");
                            out.push(PointSpec {
                                index: out.len(),
                                scenario: scenario.clone(),
                                seed,
                                fault: fault.clone(),
                                override_idx: oi,
                                override_spec: ov.clone(),
                                fleet: fleet.clone(),
                                label,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Find a grid point by label.
    pub fn find_point(&self, label: &str) -> Result<PointSpec, CampaignError> {
        self.points()
            .into_iter()
            .find(|p| p.label == label)
            .ok_or_else(|| CampaignError::UnknownPoint(label.to_string()))
    }

    /// Build the testbed configuration for one single-host grid point.
    /// Fleet points have no single testbed — use
    /// [`build_fleet_config`](Self::build_fleet_config) instead; asking
    /// for one here is a typed error (this is what `campaign bisect`,
    /// which is single-host only, reports for a fleet label).
    pub fn build_config(&self, p: &PointSpec) -> Result<TestbedConfig, CampaignError> {
        if p.fleet.is_some() {
            return Err(CampaignError::FleetPoint(p.label.clone()));
        }
        let mut cfg = scenario_config(&p.scenario)?;
        apply_override(&mut cfg, &p.override_spec)?;
        apply_fault(&mut cfg, &p.fault)?;
        cfg.seed = p.seed;
        Ok(cfg)
    }

    /// Build the fleet configuration for one `fleet` grid point: the
    /// light host profile on the point's hosts × shards × topology axes,
    /// with overrides and the fault plan applied to the per-host base
    /// template and the point's seed as the fleet seed.
    pub fn build_fleet_config(&self, p: &PointSpec) -> Result<FleetConfig, CampaignError> {
        let Some(f) = &p.fleet else {
            return Err(CampaignError::UnknownPoint(p.label.clone()));
        };
        let topology = FleetTopology::parse(&f.topology)
            .map_err(|reason| CampaignError::Manifest { line: 0, reason })?;
        let mut cfg = FleetConfig::light_fleet(f.hosts, f.shards);
        cfg.topology = topology;
        cfg.seed = p.seed;
        apply_override(&mut cfg.base, &p.override_spec)?;
        apply_fault(&mut cfg.base, &p.fault)?;
        Ok(cfg)
    }
}

/// Resolve a campaign scenario name to a base configuration. A campaign
/// subset of the CLI registry: the paper's load-bearing setups plus the
/// chaos scenarios bisect exists for.
fn scenario_config(name: &str) -> Result<TestbedConfig, CampaignError> {
    if let Some(n) = name.strip_prefix("antagonist-") {
        let cores: u32 = n
            .parse()
            .map_err(|_| CampaignError::UnknownScenario(name.to_string()))?;
        return Ok(scenarios::fig6(cores, true));
    }
    Ok(match name {
        "baseline" => scenarios::baseline(),
        "incast" => scenarios::fig3(12, true),
        "blindspot" => scenarios::cc_blindspot(14, 100),
        "chaos-replay" => scenarios::chaos_replay(),
        "chaos-flap" => scenarios::chaos_flap(),
        "chaos-invalidate" => scenarios::chaos_invalidate(),
        other => return Err(CampaignError::UnknownScenario(other.to_string())),
    })
}

/// Apply an override spec (`none` or `key=value[;key=value...]`).
fn apply_override(cfg: &mut TestbedConfig, spec: &str) -> Result<(), CampaignError> {
    if spec == "none" {
        return Ok(());
    }
    for kv in spec.split(';').filter(|s| !s.is_empty()) {
        let Some((key, value)) = kv.split_once('=') else {
            return Err(CampaignError::BadOverride(spec.to_string()));
        };
        let bad = || CampaignError::BadOverride(spec.to_string());
        match key {
            "threads" => cfg.receiver_threads = value.parse().map_err(|_| bad())?,
            "senders" => cfg.senders = value.parse().map_err(|_| bad())?,
            "antagonists" => cfg.antagonist_cores = value.parse().map_err(|_| bad())?,
            "iommu" => {
                cfg.iommu.enabled = match value {
                    "on" => true,
                    "off" => false,
                    _ => return Err(bad()),
                }
            }
            _ => return Err(bad()),
        }
    }
    Ok(())
}

/// Apply a named fault as the same canned recurring train the CLI's
/// `--faults` flag uses: 1 ms windows every 5 ms from t = 6 ms, nine
/// occurrences.
fn apply_fault(cfg: &mut TestbedConfig, name: &str) -> Result<(), CampaignError> {
    if name == "none" {
        return Ok(());
    }
    let kind = match name {
        "replay" => FaultKind::PcieReplay { nak_rate: 0.3 },
        "flap" => FaultKind::LinkFlap,
        "stall" => FaultKind::DescriptorStall,
        "storm" => FaultKind::IotlbStorm {
            flush_period: SimDuration::from_micros(50),
        },
        "throttle" => FaultKind::MemThrottle { factor: 0.4 },
        "preempt" => FaultKind::CorePreempt { cores: 2 },
        other => return Err(CampaignError::UnknownFault(other.to_string())),
    };
    cfg.faults = cfg.faults.clone().recurring(
        kind,
        SimDuration::from_millis(6),
        SimDuration::from_millis(1),
        SimDuration::from_millis(5),
        9,
    );
    cfg.flow.partial_ack_rtx = true;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE: &str = "\
        # comment line\n\
        name = smoke\n\
        warmup_ms = 1\n\
        measure_ms = 2\n\
        checkpoint_every_ms = 1\n\
        scenarios = incast, antagonist-8\n\
        seeds = 1, 2\n\
        faults = none, replay\n\
        overrides = none, threads=4;iommu=off\n";

    #[test]
    fn parses_and_builds_the_full_grid() {
        let m = Manifest::parse(SMOKE).expect("valid manifest");
        assert_eq!(m.name, "smoke");
        assert_eq!(m.warmup, SimDuration::from_millis(1));
        let pts = m.points();
        assert_eq!(pts.len(), 2 * 2 * 2 * 2);
        // Deterministic order and stable labels.
        assert_eq!(pts[0].label, "incast-s1-none-o0");
        assert_eq!(pts[1].label, "incast-s1-none-o1");
        assert_eq!(pts[15].label, "antagonist-8-s2-replay-o1");
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(p.index, i);
            let cfg = m.build_config(p).expect("every point builds");
            assert_eq!(cfg.seed, p.seed);
        }
        // The override actually lands.
        let p = pts.iter().find(|p| p.override_idx == 1).unwrap();
        let cfg = m.build_config(p).unwrap();
        assert_eq!(cfg.receiver_threads, 4);
        assert!(!cfg.iommu.enabled);
        // The fault plan actually lands.
        let p = pts.iter().find(|p| p.fault == "replay").unwrap();
        let cfg = m.build_config(p).unwrap();
        assert!(!cfg.faults.specs.is_empty());
    }

    #[test]
    fn rejects_malformed_manifests() {
        let err = Manifest::parse("scenarios = incast\nbogus_key = 3\n").unwrap_err();
        assert!(
            matches!(err, CampaignError::Manifest { line: 2, .. }),
            "{err}"
        );
        let err = Manifest::parse("scenarios = incast\nseeds = x\n").unwrap_err();
        assert!(
            matches!(err, CampaignError::Manifest { line: 2, .. }),
            "{err}"
        );
        let err = Manifest::parse("name = empty\n").unwrap_err();
        assert!(matches!(err, CampaignError::Manifest { .. }), "{err}");
        let err = Manifest::parse("scenarios = warp-drive\n").unwrap_err();
        assert!(matches!(err, CampaignError::UnknownScenario(_)), "{err}");
        let err = Manifest::parse("scenarios = incast\nfaults = gremlin\n").unwrap_err();
        assert!(matches!(err, CampaignError::UnknownFault(_)), "{err}");
        let err = Manifest::parse("scenarios = incast\noverrides = depth=11\n").unwrap_err();
        assert!(matches!(err, CampaignError::BadOverride(_)), "{err}");
    }

    #[test]
    fn fleet_scenario_expands_the_fleet_axes() {
        let m = Manifest::parse(
            "scenarios = incast, fleet\n\
             seeds = 1\n\
             fleet_hosts = 8, 12\n\
             fleet_shards = 1, 2\n\
             fleet_topology = tree:2, rack:4\n",
        )
        .expect("valid fleet manifest");
        let pts = m.points();
        // 1 incast point + 2 hosts × 2 shards × 2 topologies.
        assert_eq!(pts.len(), 1 + 8);
        assert_eq!(pts[0].label, "incast-s1-none-o0");
        assert!(pts[0].fleet.is_none());
        assert_eq!(pts[1].label, "fleet-h8-x1-tree.2-s1-none-o0");
        assert_eq!(
            pts[1].fleet,
            Some(FleetSpec {
                hosts: 8,
                shards: 1,
                topology: "tree:2".to_string(),
            })
        );
        assert_eq!(pts[8].label, "fleet-h12-x2-rack.4-s1-none-o0");
        for p in &pts[1..] {
            let cfg = m.build_fleet_config(p).expect("fleet point builds");
            assert_eq!(cfg.seed, p.seed);
            assert_eq!(cfg.hosts, p.fleet.as_ref().unwrap().hosts);
            assert_eq!(cfg.shards, p.fleet.as_ref().unwrap().shards);
            // Labels stay filename-safe: the `:` never reaches them.
            assert!(p
                .label
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "-.+=;".contains(c)));
            // A fleet point has no single-host config — typed error.
            assert!(matches!(
                m.build_config(p),
                Err(CampaignError::FleetPoint(_))
            ));
        }
    }

    #[test]
    fn fleet_axes_are_validated_at_parse_time() {
        let err = Manifest::parse("scenarios = fleet\nfleet_topology = warp:9\n").unwrap_err();
        assert!(
            matches!(err, CampaignError::Manifest { line: 2, .. }),
            "{err}"
        );
        let err = Manifest::parse("scenarios = fleet\nfleet_hosts = x\n").unwrap_err();
        assert!(
            matches!(err, CampaignError::Manifest { line: 2, .. }),
            "{err}"
        );
        // shards > hosts is caught by fleet validation before any run.
        let err =
            Manifest::parse("scenarios = fleet\nfleet_hosts = 2\nfleet_shards = 4\n").unwrap_err();
        assert!(matches!(err, CampaignError::Run { .. }), "{err}");
        // Non-fleet manifests ignore the axes entirely.
        let m = Manifest::parse("scenarios = incast\nfleet_hosts = 2\nfleet_shards = 4\n")
            .expect("axes unused without the fleet scenario");
        assert_eq!(m.points().len(), 1);
    }

    #[test]
    fn find_point_round_trips_labels() {
        let m = Manifest::parse(SMOKE).unwrap();
        for p in m.points() {
            assert_eq!(m.find_point(&p.label).unwrap(), p);
        }
        assert!(matches!(
            m.find_point("nope"),
            Err(CampaignError::UnknownPoint(_))
        ));
    }
}
