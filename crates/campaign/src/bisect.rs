//! Chaos bisect-in-time: localize the first slot where a fault plan made
//! a run diverge.
//!
//! The runner keeps, for every faulted point, the checkpoint taken at
//! the last slice boundary *strictly before* the first fault window.
//! Bisect restores that checkpoint twice — a factual replica and a
//! counterfactual one with [`Testbed::suppress_faults`] set so pending
//! fault windows never open — and steps both forward in fine time
//! quanta. At each step it digests each replica's full serialized state
//! (the checkpoint codec doubles as a canonical state hash): the first
//! step where the digests differ is the first slot the fault reached
//! simulation state, bounded to within one quantum. The per-step digest
//! stream lands in `bisect/{label}.jsonl` as the finer-grained telemetry
//! the coarse campaign artifacts lack.
//!
//! [`Testbed::suppress_faults`]: hostcc_host::Testbed::suppress_faults

use crate::artifact::atomic_write;
use crate::manifest::Manifest;
use crate::runner::{decode_point, Layout};
use crate::{io_err, CampaignError};
use hostcc_host::{RunError, Simulation};
use hostcc_sim::{fnv1a_64, RunOutcome, SimDuration, SimTime};
use std::path::Path;

/// What a bisect run localized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BisectReport {
    /// The grid point bisected.
    pub label: String,
    /// Replay start (the pre-fault checkpoint's instant), nanoseconds.
    pub from_ns: u64,
    /// Replay end (end of the point's measurement window), nanoseconds.
    pub until_ns: u64,
    /// Replay quantum, nanoseconds.
    pub step_ns: u64,
    /// First step boundary where factual and counterfactual state
    /// digests differ (`None`: the fault plan never perturbed state).
    pub first_divergence_ns: Option<u64>,
    /// Where the factual replica stalled, if it did.
    pub stalled_ns: Option<u64>,
    /// Steps replayed (lines written to the bisect artifact).
    pub steps: usize,
}

/// Digest a replica's full state through the checkpoint codec.
fn digest(label: &str, sim: &Simulation) -> Result<u64, CampaignError> {
    sim.save_checkpoint()
        .map(|b| fnv1a_64(&b))
        .map_err(|e| CampaignError::Run {
            label: label.to_string(),
            source: RunError::from(e),
        })
}

/// Bisect one grid point. Requires a prior campaign run to have left a
/// pre-fault checkpoint under `out` (so the point must carry a fault
/// plan). `step` is the replay quantum; finer steps localize tighter
/// and cost proportionally more replay work.
pub fn bisect(
    m: &Manifest,
    out: &Path,
    label: &str,
    step: SimDuration,
    log: &mut dyn FnMut(&str),
) -> Result<BisectReport, CampaignError> {
    let p = m.find_point(label)?;
    let cfg = m.build_config(&p)?;
    let layout = Layout::new(out);
    let prefault = layout.prefault(label);
    if !prefault.exists() {
        return Err(CampaignError::MissingCheckpoint(label.to_string()));
    }
    let raw = std::fs::read(&prefault).map_err(|e| io_err(&prefault, e))?;
    let corrupt = |source| CampaignError::Run {
        label: label.to_string(),
        source: RunError::Checkpoint(source),
    };
    let (mut factual, _) = decode_point(cfg.clone(), label, &raw).map_err(corrupt)?;
    let (mut counterfactual, _) = decode_point(cfg, label, &raw).map_err(corrupt)?;
    counterfactual.world_mut().suppress_faults();

    let from_ns = factual.now().as_nanos();
    let until_ns = (m.warmup + m.measure).as_nanos();
    let step_ns = step.as_nanos().max(1);
    log(&format!(
        "{label}: replaying {from_ns}..{until_ns} ns in {step_ns} ns quanta \
         (factual vs faults-suppressed)"
    ));

    let mut lines: Vec<String> = Vec::new();
    let mut first_divergence_ns = None;
    let mut stalled_ns = None;
    let mut t = from_ns;
    while t < until_ns {
        t = (t + step_ns).min(until_ns);
        let bt = SimTime::from_nanos(t);
        if let RunOutcome::Stalled { at } = factual.run_to(bt) {
            stalled_ns = Some(at.as_nanos());
            lines.push(format!("{{\"t_ns\":{t},\"stalled_ns\":{}}}", at.as_nanos()));
            break;
        }
        // The counterfactual replica has no fault windows left to open;
        // a stall there would be a genuine (fault-independent) hang and
        // still deserves a typed surface, not a panic.
        if let RunOutcome::Stalled { at } = counterfactual.run_to(bt) {
            return Err(CampaignError::Run {
                label: label.to_string(),
                source: RunError::Stalled {
                    at,
                    pending: 0,
                    host: None,
                    shard: None,
                    telemetry: None,
                },
            });
        }
        let df = digest(label, &factual)?;
        let dc = digest(label, &counterfactual)?;
        let diverged = df != dc;
        if diverged && first_divergence_ns.is_none() {
            first_divergence_ns = Some(t);
            log(&format!("{label}: first state divergence at {t} ns"));
        }
        lines.push(format!(
            "{{\"t_ns\":{t},\"digest_fault\":{df},\"digest_clean\":{dc},\
             \"open_windows\":{},\"diverged\":{diverged}}}",
            factual.world().faults.open_windows(),
        ));
    }

    let dir = out.join("bisect");
    std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
    let artifact = dir.join(format!("{label}.jsonl"));
    let mut body = lines.join("\n");
    body.push('\n');
    atomic_write(&artifact, body.as_bytes())?;

    Ok(BisectReport {
        label: label.to_string(),
        from_ns,
        until_ns,
        step_ns,
        first_divergence_ns,
        stalled_ns,
        steps: lines.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{execute, ExecuteOptions};
    use std::fs;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "hostcc-campaign-bisect-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn localizes_first_divergent_slot_of_a_fault_window() {
        // One faulted point: windows open at 6 ms; measurement ends at
        // 10 ms; cadence 2 ms leaves the pre-fault checkpoint at 4 ms.
        let m = Manifest::parse(
            "name = bisect\n\
             warmup_ms = 5\n\
             measure_ms = 5\n\
             checkpoint_every_ms = 2\n\
             scenarios = incast\n\
             faults = replay\n",
        )
        .unwrap();
        let d = tmpdir("replay");
        let mut log = |_: &str| {};
        let r = execute(&m, &d, &ExecuteOptions::default(), &mut log).unwrap();
        assert_eq!(r.completed.len(), 1);
        let label = "incast-s1-replay-o0";
        assert!(
            d.join(format!("checkpoints/{label}.prefault.ckpt"))
                .exists(),
            "runner must leave a pre-fault checkpoint for faulted points"
        );

        let rep = bisect(&m, &d, label, SimDuration::from_micros(250), &mut log).unwrap();
        // Boundaries below the 6 ms window: 2, 4 and 5 ms (warm-up);
        // the last one wins as the pre-fault checkpoint.
        assert_eq!(rep.from_ns, 5_000_000, "pre-fault checkpoint sits at 5 ms");
        assert_eq!(rep.until_ns, 10_000_000);
        let div = rep
            .first_divergence_ns
            .expect("a 30% NAK-rate window must perturb state");
        assert!(
            div >= 6_000_000,
            "divergence cannot precede the window opening at 6 ms (got {div})"
        );
        assert!(rep.stalled_ns.is_none());
        let body = fs::read_to_string(d.join(format!("bisect/{label}.jsonl"))).unwrap();
        assert_eq!(body.lines().count(), rep.steps);
        assert!(body.contains("\"diverged\":true"));
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn missing_prefault_checkpoint_is_a_typed_error() {
        let m = Manifest::parse(
            "warmup_ms = 1\nmeasure_ms = 1\ncheckpoint_every_ms = 1\n\
             scenarios = incast\nfaults = replay\n",
        )
        .unwrap();
        let d = tmpdir("missing");
        let mut log = |_: &str| {};
        // No campaign ran; the checkpoint cannot exist.
        let err = bisect(
            &m,
            &d,
            "incast-s1-replay-o0",
            SimDuration::from_micros(100),
            &mut log,
        )
        .unwrap_err();
        assert!(matches!(err, CampaignError::MissingCheckpoint(_)), "{err}");
        let err = bisect(&m, &d, "nope", SimDuration::from_micros(100), &mut log).unwrap_err();
        assert!(matches!(err, CampaignError::UnknownPoint(_)), "{err}");
        let _ = fs::remove_dir_all(&d);
    }
}
