//! Crash-safe file primitives: atomic whole-file writes and the
//! append-only completion journal.
//!
//! The crash model is `SIGKILL` (or power loss) at any instruction.
//! Whole files — metric artifacts, checkpoints — are written to a
//! `.tmp` sibling, fsynced, and renamed into place: a reader sees either
//! the previous complete version or the new complete version. The
//! journal is the one append-in-place file; a crash mid-append leaves at
//! most one truncated trailing line, which [`read_journal`] detects and
//! skips (with a count, so the caller can log it) rather than failing.

use crate::{io_err, CampaignError};
use std::fs;
use std::io::Write;
use std::path::Path;

/// Write `bytes` to `path` atomically: temp sibling + fsync + rename.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), CampaignError> {
    let tmp = path.with_extension("tmp");
    let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
    f.write_all(bytes).map_err(|e| io_err(&tmp, e))?;
    f.sync_all().map_err(|e| io_err(&tmp, e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| io_err(path, e))
}

/// One completion-journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// The grid point's label.
    pub label: String,
    /// `done` or `failed`.
    pub status: String,
    /// Simulated nanoseconds the point reached.
    pub t_ns: u64,
}

impl JournalEntry {
    /// Render as one JSONL line (labels are `[a-z0-9.+=;-]`, statuses are
    /// fixed words — no escaping needed).
    pub fn to_line(&self) -> String {
        format!(
            "{{\"label\":\"{}\",\"status\":\"{}\",\"t_ns\":{}}}",
            self.label, self.status, self.t_ns
        )
    }
}

/// Append one entry to the journal and fsync. Append is not atomic; the
/// reader tolerates the torn trailing line a crash here can leave.
pub fn append_journal(path: &Path, entry: &JournalEntry) -> Result<(), CampaignError> {
    let mut f = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| io_err(path, e))?;
    let mut line = entry.to_line();
    line.push('\n');
    f.write_all(line.as_bytes()).map_err(|e| io_err(path, e))?;
    f.sync_all().map_err(|e| io_err(path, e))
}

/// Read the journal, skipping (and counting) torn or unparsable lines.
/// A missing journal is an empty one.
pub fn read_journal(path: &Path) -> Result<(Vec<JournalEntry>, usize), CampaignError> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(io_err(path, e)),
    };
    let mut entries = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let parsed = (|| {
            if !line.ends_with('}') {
                return None;
            }
            Some(JournalEntry {
                label: json_str_field(line, "label")?,
                status: json_str_field(line, "status")?,
                t_ns: json_u64_field(line, "t_ns")?,
            })
        })();
        match parsed {
            Some(e) => entries.push(e),
            None => skipped += 1,
        }
    }
    Ok((entries, skipped))
}

/// Extract `"key":"value"` from a flat JSON object line. Good enough for
/// the artifacts this crate itself writes (no escapes, no nesting).
pub fn json_str_field(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Extract `"key":123` from a flat JSON object line.
pub fn json_u64_field(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "hostcc-campaign-artifact-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn atomic_write_replaces_whole_files() {
        let d = tmpdir("atomic");
        let p = d.join("metrics.jsonl");
        atomic_write(&p, b"one\n").unwrap();
        atomic_write(&p, b"one\ntwo\n").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"one\ntwo\n");
        assert!(!p.with_extension("tmp").exists(), "tmp renamed away");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn journal_round_trips_and_tolerates_torn_tail() {
        let d = tmpdir("journal");
        let p = d.join("journal.jsonl");
        let a = JournalEntry {
            label: "incast-s1-none-o0".into(),
            status: "done".into(),
            t_ns: 15_000_000,
        };
        let b = JournalEntry {
            label: "incast-s2-replay-o0".into(),
            status: "failed".into(),
            t_ns: 7_500_000,
        };
        append_journal(&p, &a).unwrap();
        append_journal(&p, &b).unwrap();
        // Simulate a crash mid-append: a torn trailing line.
        let mut f = fs::OpenOptions::new().append(true).open(&p).unwrap();
        f.write_all(b"{\"label\":\"incast-s3-none").unwrap();
        drop(f);
        let (entries, skipped) = read_journal(&p).unwrap();
        assert_eq!(entries, vec![a, b]);
        assert_eq!(skipped, 1, "torn line skipped, not fatal");
        // A missing journal reads as empty.
        let (entries, skipped) = read_journal(&d.join("absent.jsonl")).unwrap();
        assert!(entries.is_empty());
        assert_eq!(skipped, 0);
        let _ = fs::remove_dir_all(&d);
    }
}
