//! Property-based tests over the full stack and key substrates.
//!
//! These exercise randomly-drawn configurations and access patterns,
//! checking invariants that must hold for *any* input — conservation,
//! bounds, monotonicity, determinism.

use hostcc::experiment::{run, RunPlan};
use hostcc::substrate::iommu::{Iotlb, IotlbTag};
use hostcc::substrate::mem::{IoPageTable, Iova, PageSize, PhysAddr};
use hostcc::substrate::sim::{EventQueue, SimRng, SimTime};
use hostcc::TestbedConfig;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any small testbed configuration must run without panicking and
    /// satisfy basic accounting invariants.
    #[test]
    fn testbed_invariants_hold_for_random_configs(
        seed in 0u64..1000,
        senders in 2u32..10,
        threads in 1u32..8,
        iommu_on in any::<bool>(),
        antagonist in 0u32..8,
    ) {
        let mut cfg = TestbedConfig {
            seed,
            senders,
            receiver_threads: threads,
            antagonist_cores: antagonist,
            ..TestbedConfig::default()
        };
        cfg.iommu.enabled = iommu_on;
        let m = run(cfg, RunPlan {
            warmup: hostcc::substrate::sim::SimDuration::from_millis(2),
            measure: hostcc::substrate::sim::SimDuration::from_millis(3),
        });

        // Conservation and bounds.
        prop_assert!(m.delivered_payload_bytes == m.delivered_packets * 4096);
        prop_assert!(m.app_throughput_gbps() >= 0.0);
        prop_assert!(m.app_throughput_gbps() < 93.0, "throughput above ceiling");
        prop_assert!(m.drop_rate() <= 1.0);
        prop_assert!(m.iotlb_misses <= m.iotlb_lookups);
        if !iommu_on {
            prop_assert_eq!(m.iotlb_lookups, 0);
        }
        // Host delay histogram is populated iff packets were delivered.
        prop_assert_eq!(m.host_delay.count() > 0, m.delivered_packets > 0);
        prop_assert!(m.nic_buffer_peak_bytes <= 1 << 20);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The event queue pops in non-decreasing time order with FIFO ties,
    /// for any push sequence.
    #[test]
    fn event_queue_ordering(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last_time = 0;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut current_time = u64::MAX;
        while let Some((t, idx)) = q.pop() {
            prop_assert!(t.as_nanos() >= last_time, "time went backwards");
            if t.as_nanos() != current_time {
                current_time = t.as_nanos();
                seen_at_time.clear();
            }
            // FIFO within a timestamp: indices increase.
            if let Some(&prev) = seen_at_time.last() {
                prop_assert!(idx > prev, "FIFO violated at t={current_time}");
            }
            seen_at_time.push(idx);
            last_time = t.as_nanos();
        }
    }

    /// Page-table translation is exact for every offset in a mapped range
    /// and faults outside it.
    #[test]
    fn page_table_translation_exact(
        pages in 1u64..32,
        probe in 0u64..(32 * 4096),
        huge in any::<bool>(),
    ) {
        let size = if huge { PageSize::Size2M } else { PageSize::Size4K };
        let len = pages * size.bytes();
        let mut pt = IoPageTable::new();
        let iova_base = 8 * size.bytes();
        let pa_base = 1u64 << 33;
        pt.map_range(Iova(iova_base), PhysAddr(pa_base), len, size).unwrap();

        let probe_scaled = probe % (2 * len); // half inside, half outside
        let addr = Iova(iova_base + probe_scaled);
        match pt.translate(addr) {
            Ok(tr) => {
                prop_assert!(probe_scaled < len, "translated out-of-range address");
                prop_assert_eq!(tr.pa.as_u64(), pa_base + probe_scaled);
                prop_assert_eq!(tr.page_size, size);
            }
            Err(_) => prop_assert!(probe_scaled >= len, "fault inside mapped range"),
        }
    }

    /// IOTLB occupancy never exceeds capacity and a working set within
    /// capacity converges to zero misses (fully-associative LRU).
    #[test]
    fn iotlb_capacity_and_convergence(
        entries_pow in 3u32..8, // 8..128 entries
        ws in 1u64..200,
    ) {
        let entries = 1usize << entries_pow;
        let mut tlb = Iotlb::new(entries, entries);
        let ws = ws.min(entries as u64); // working set within capacity
        // Two warm-up passes, then measure.
        for _ in 0..2 {
            for p in 0..ws {
                tlb.access(IotlbTag { domain: 0, page_number: p, page_size: PageSize::Size2M });
            }
        }
        tlb.reset_stats();
        for p in 0..ws {
            tlb.access(IotlbTag { domain: 0, page_number: p, page_size: PageSize::Size2M });
        }
        prop_assert_eq!(tlb.stats().misses, 0, "in-capacity set must be all hits");
        prop_assert!(tlb.occupancy() <= entries);
    }

    /// The RNG's bounded generation stays in bounds and covers values.
    #[test]
    fn rng_bounds(seed in any::<u64>(), bound in 1u64..10_000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.next_below(bound) < bound);
        }
        let x = rng.next_range(10, 20);
        prop_assert!((10..=20).contains(&x));
    }
}
