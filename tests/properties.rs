//! Property-style tests over the full stack and key substrates.
//!
//! These exercise many seeded-random configurations and access patterns,
//! checking invariants that must hold for *any* input — conservation,
//! bounds, monotonicity, determinism. Inputs are drawn from [`SimRng`]
//! with fixed seeds, so every run exercises the same cases and failures
//! reproduce exactly.

use hostcc::experiment::{run as try_run, RunPlan};
use hostcc::substrate::iommu::{Iotlb, IotlbTag};
use hostcc::substrate::mem::{IoPageTable, Iova, PageSize, PhysAddr};
use hostcc::substrate::sim::{EventQueue, SimDuration, SimRng, SimTime};
use hostcc::TestbedConfig;

/// Property cases only draw valid configurations; unwrap the panic-free
/// experiment API at the edge.
fn run(cfg: TestbedConfig, plan: RunPlan) -> hostcc::RunMetrics {
    try_run(cfg, plan).expect("property config runs")
}

/// Any small testbed configuration must run without panicking and
/// satisfy basic accounting invariants.
#[test]
fn testbed_invariants_hold_for_random_configs() {
    let mut rng = SimRng::new(0xA11CE);
    for case in 0..16 {
        let seed = rng.next_below(1000);
        let senders = 2 + rng.next_below(8) as u32;
        let threads = 1 + rng.next_below(7) as u32;
        let iommu_on = rng.next_below(2) == 1;
        let antagonist = rng.next_below(8) as u32;
        let mut cfg = TestbedConfig {
            seed,
            senders,
            receiver_threads: threads,
            antagonist_cores: antagonist,
            ..TestbedConfig::default()
        };
        cfg.iommu.enabled = iommu_on;
        let m = run(
            cfg,
            RunPlan {
                warmup: SimDuration::from_millis(2),
                measure: SimDuration::from_millis(3),
            },
        );

        // Conservation and bounds.
        let ctx = format!(
            "case {case}: seed={seed} senders={senders} threads={threads} \
             iommu={iommu_on} antagonist={antagonist}"
        );
        assert_eq!(
            m.delivered_payload_bytes,
            m.delivered_packets * 4096,
            "{ctx}"
        );
        assert!(m.app_throughput_gbps() >= 0.0, "{ctx}");
        assert!(
            m.app_throughput_gbps() < 93.0,
            "throughput above ceiling: {ctx}"
        );
        assert!(m.drop_rate() <= 1.0, "{ctx}");
        assert!(m.iotlb_misses <= m.iotlb_lookups, "{ctx}");
        if !iommu_on {
            assert_eq!(m.iotlb_lookups, 0, "{ctx}");
        }
        // Host delay histogram is populated iff packets were delivered.
        assert_eq!(m.host_delay.count() > 0, m.delivered_packets > 0, "{ctx}");
        assert!(m.nic_buffer_peak_bytes <= 1 << 20, "{ctx}");
        // The stage breakdown decomposes host delay exactly.
        assert_eq!(m.stage_breakdown.count(), m.host_delay.count(), "{ctx}");
        assert_eq!(
            m.stage_breakdown.total_sum_ns(),
            m.host_delay.sum(),
            "{ctx}"
        );
    }
}

/// The event queue pops in non-decreasing time order with FIFO ties,
/// for any push sequence.
#[test]
fn event_queue_ordering() {
    let mut rng = SimRng::new(0xB0B);
    for _ in 0..64 {
        let n = 1 + rng.next_below(199) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.next_below(1000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last_time = 0;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut current_time = u64::MAX;
        while let Some((t, idx)) = q.pop() {
            assert!(t.as_nanos() >= last_time, "time went backwards");
            if t.as_nanos() != current_time {
                current_time = t.as_nanos();
                seen_at_time.clear();
            }
            // FIFO within a timestamp: indices increase.
            if let Some(&prev) = seen_at_time.last() {
                assert!(idx > prev, "FIFO violated at t={current_time}");
            }
            seen_at_time.push(idx);
            last_time = t.as_nanos();
        }
    }
}

/// Page-table translation is exact for every offset in a mapped range
/// and faults outside it.
#[test]
fn page_table_translation_exact() {
    let mut rng = SimRng::new(0xC0FFEE);
    for _ in 0..64 {
        let pages = 1 + rng.next_below(31);
        let probe = rng.next_below(32 * 4096);
        let huge = rng.next_below(2) == 1;
        let size = if huge {
            PageSize::Size2M
        } else {
            PageSize::Size4K
        };
        let len = pages * size.bytes();
        let mut pt = IoPageTable::new();
        let iova_base = 8 * size.bytes();
        let pa_base = 1u64 << 33;
        pt.map_range(Iova(iova_base), PhysAddr(pa_base), len, size)
            .unwrap();

        let probe_scaled = probe % (2 * len); // half inside, half outside
        let addr = Iova(iova_base + probe_scaled);
        match pt.translate(addr) {
            Ok(tr) => {
                assert!(probe_scaled < len, "translated out-of-range address");
                assert_eq!(tr.pa.as_u64(), pa_base + probe_scaled);
                assert_eq!(tr.page_size, size);
            }
            Err(_) => assert!(probe_scaled >= len, "fault inside mapped range"),
        }
    }
}

/// IOTLB occupancy never exceeds capacity and a working set within
/// capacity converges to zero misses (fully-associative LRU).
#[test]
fn iotlb_capacity_and_convergence() {
    let mut rng = SimRng::new(0xD1CE);
    for _ in 0..32 {
        let entries = 1usize << (3 + rng.next_below(5)); // 8..128 entries
        let ws = 1 + rng.next_below(199);
        let mut tlb = Iotlb::new(entries, entries);
        let ws = ws.min(entries as u64); // working set within capacity
                                         // Two warm-up passes, then measure.
        for _ in 0..2 {
            for p in 0..ws {
                tlb.access(IotlbTag {
                    domain: 0,
                    page_number: p,
                    page_size: PageSize::Size2M,
                });
            }
        }
        tlb.reset_stats();
        for p in 0..ws {
            tlb.access(IotlbTag {
                domain: 0,
                page_number: p,
                page_size: PageSize::Size2M,
            });
        }
        assert_eq!(tlb.stats().misses, 0, "in-capacity set must be all hits");
        assert!(tlb.occupancy() <= entries);
    }
}

/// The RNG's bounded generation stays in bounds and covers values.
#[test]
fn rng_bounds() {
    let mut seeds = SimRng::new(0xFEED);
    for _ in 0..32 {
        let seed = seeds.next_u64();
        let bound = 1 + seeds.next_below(9_999);
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            assert!(rng.next_below(bound) < bound);
        }
        let x = rng.next_range(10, 20);
        assert!((10..=20).contains(&x));
    }
}
