//! Resume bit-identity: a run interrupted by checkpoint/restore must be
//! indistinguishable — in final metrics, in full serialized state, and
//! in its streamed telemetry bytes — from one that never stopped.
//!
//! The comparison discipline matters: both runs drive the identical
//! `run_to` slice schedule. For single hosts slicing is provably
//! neutral (the engine replays the same event sequence under any slice
//! boundaries), but sharing the schedule keeps these tests aligned with
//! the fleet case below, where the epoch grid derived from `run_to`
//! deadlines *is* part of the deterministic schedule and the campaign
//! runner therefore always drives fleets at its checkpoint cadence.
//!
//! The malformed-input half of the suite pins the robustness contract:
//! corrupt, truncated or version-skewed checkpoints come back as typed
//! [`SnapError`]s — never a panic, never a silently wrong restore.

use hostcc::fleet::{Fleet, FleetConfig};
use hostcc::scenarios;
use hostcc::substrate::sim::{SimDuration, SimTime, SnapError};
use hostcc::{RunMetrics, Simulation, TelemetryConfig, TestbedConfig};

const WARMUP: SimDuration = SimDuration::from_millis(1);
const MEASURE: SimDuration = SimDuration::from_millis(2);
const MID: SimDuration = SimDuration::from_micros(500);

/// The six golden scenarios the differential suites pin down.
fn goldens() -> Vec<(&'static str, TestbedConfig)> {
    vec![
        ("incast", scenarios::fig3(12, true)),
        ("antagonist_0", scenarios::fig6(0, true)),
        ("antagonist_8", scenarios::fig6(8, true)),
        ("antagonist_15", scenarios::fig6(15, true)),
        ("baseline", scenarios::baseline()),
        ("blindspot", scenarios::cc_blindspot(14, 100)),
    ]
}

/// Everything a run can leak: the metric fields the figure tables are
/// built from (floats compared by bit pattern) plus the run's entire
/// final serialized state.
fn fingerprint(m: &RunMetrics, final_ckpt: &[u8]) -> (u64, u64, u64, u64, u64, u64, Vec<u8>) {
    (
        m.delivered_packets,
        m.delivered_payload_bytes,
        m.host_drops(),
        m.retransmits,
        m.iotlb_misses,
        m.host_delay_p99_us().to_bits(),
        final_ckpt.to_vec(),
    )
}

/// Drive one run over the shared slice schedule; when `interrupt` is
/// set, serialize at the mid-warm-up boundary and continue in a freshly
/// restored simulation.
fn run_sliced(
    cfg: &TestbedConfig,
    batched: bool,
    interrupt: bool,
) -> (u64, u64, u64, u64, u64, u64, Vec<u8>) {
    let mid = SimTime::ZERO + MID;
    let t1 = SimTime::ZERO + WARMUP;
    let t2 = t1 + MEASURE;
    let mut sim = Simulation::new(cfg.clone());
    sim.set_batched(batched);
    sim.run_to(mid);
    if interrupt {
        let bytes = sim.save_checkpoint().expect("slot-boundary checkpoint");
        drop(sim);
        sim = Simulation::restore_checkpoint(cfg.clone(), &bytes).expect("valid checkpoint");
        // Dispatch mode is an engine knob, not simulation state; the
        // restored engine must be told again.
        sim.set_batched(batched);
    }
    sim.run_to(t1);
    sim.world_mut().arm_metrics(t1);
    sim.run_to(t2);
    let m = sim.world_mut().snapshot(t2);
    let final_ckpt = sim.save_checkpoint().expect("final checkpoint");
    fingerprint(&m, &final_ckpt)
}

#[test]
fn six_goldens_resume_bit_identical_batched() {
    for (name, cfg) in goldens() {
        let straight = run_sliced(&cfg, true, false);
        let resumed = run_sliced(&cfg, true, true);
        assert_eq!(straight, resumed, "{name}: resumed run diverged (batched)");
    }
}

#[test]
fn six_goldens_resume_bit_identical_per_event() {
    for (name, cfg) in goldens() {
        let straight = run_sliced(&cfg, false, false);
        let resumed = run_sliced(&cfg, false, true);
        assert_eq!(
            straight, resumed,
            "{name}: resumed run diverged (per-event)"
        );
    }
}

/// A `Write` sink capturing the telemetry JSONL stream in memory.
#[derive(Clone)]
struct Shared(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

impl std::io::Write for Shared {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Shared {
    fn new() -> Shared {
        Shared(std::sync::Arc::new(std::sync::Mutex::new(Vec::new())))
    }
    fn bytes(&self) -> Vec<u8> {
        self.0.lock().unwrap().clone()
    }
}

/// The streamed telemetry JSONL of an interrupted run (bytes before the
/// checkpoint + bytes after the restore, through a fresh sink — sinks
/// are transient and deliberately not serialized) must concatenate to
/// exactly the uninterrupted run's stream, for every golden scenario.
#[test]
fn six_goldens_telemetry_stream_survives_resume_byte_identical() {
    let mid = SimTime::ZERO + MID;
    let t1 = SimTime::ZERO + WARMUP;
    let t2 = t1 + MEASURE;
    for (name, base) in goldens() {
        let mut cfg = base;
        cfg.telemetry = TelemetryConfig::enabled();

        let straight_sink = Shared::new();
        let mut sim = Simulation::new(cfg.clone());
        sim.world_mut()
            .telemetry
            .set_sink(Box::new(straight_sink.clone()));
        sim.run_to(mid);
        sim.run_to(t1);
        sim.world_mut().arm_metrics(t1);
        sim.run_to(t2);
        sim.world_mut().snapshot(t2);

        let before = Shared::new();
        let after = Shared::new();
        let mut sim = Simulation::new(cfg.clone());
        sim.world_mut().telemetry.set_sink(Box::new(before.clone()));
        sim.run_to(mid);
        let bytes = sim.save_checkpoint().expect("telemetry state serializes");
        let mut sim =
            Simulation::restore_checkpoint(cfg.clone(), &bytes).expect("valid checkpoint");
        sim.world_mut().telemetry.set_sink(Box::new(after.clone()));
        sim.run_to(t1);
        sim.world_mut().arm_metrics(t1);
        sim.run_to(t2);
        sim.world_mut().snapshot(t2);

        let mut stitched = before.bytes();
        stitched.extend_from_slice(&after.bytes());
        assert!(
            !stitched.is_empty(),
            "{name}: sampler must have streamed something"
        );
        assert_eq!(
            straight_sink.bytes(),
            stitched,
            "{name}: stitched telemetry stream must be byte-identical"
        );
    }
}

/// A small four-host coupled fleet for the multi-host round trip.
fn small_fleet() -> FleetConfig {
    FleetConfig {
        hosts: 4,
        shards: 1,
        base: TestbedConfig {
            senders: 6,
            receiver_threads: 4,
            ..TestbedConfig::default()
        },
        ..FleetConfig::coupled_fleet()
    }
}

/// Fleet resume bit-identity at one and four shards. The reference run
/// shares the interrupted run's slice schedule: fleet epoch grids clamp
/// at every `run_to` deadline, so the slice schedule is part of the
/// deterministic contract (this is why the campaign runner drives
/// fleets on its checkpoint cadence whether or not it writes one).
#[test]
fn fleet_resume_bit_identical_at_one_and_four_shards() {
    let cfg = small_fleet();
    let mid = SimTime::ZERO + MID;
    let t1 = SimTime::ZERO + WARMUP;
    let t2 = t1 + MEASURE;

    type HostFingerprint = (u64, u64, u64, u64);
    let finish = |fleet: &mut Fleet| -> (Vec<HostFingerprint>, Vec<u8>) {
        fleet.run_to(t1).expect("no stalls");
        for h in fleet.hosts_mut() {
            h.sim_mut().world_mut().arm_metrics(t1);
        }
        fleet.run_to(t2).expect("no stalls");
        let per_host = fleet
            .hosts_mut()
            .iter_mut()
            .map(|h| {
                let m = h.sim_mut().world_mut().snapshot(t2);
                (
                    m.delivered_packets,
                    m.host_drops(),
                    m.retransmits,
                    m.host_delay_p99_us().to_bits(),
                )
            })
            .collect();
        let ckpt = fleet.save_checkpoint().expect("final fleet checkpoint");
        (per_host, ckpt)
    };

    let mut reference = Fleet::new(&cfg).expect("valid fleet");
    reference.run_to(mid).expect("no stalls");
    let expected = finish(&mut reference);

    let mut interrupted = Fleet::new(&cfg).expect("valid fleet");
    interrupted.run_to(mid).expect("no stalls");
    let bytes = interrupted.save_checkpoint().expect("fleet checkpoint");

    for shards in [1u32, 4u32] {
        let mut restore_cfg = cfg.clone();
        restore_cfg.shards = shards;
        let mut fleet = Fleet::restore_checkpoint(&restore_cfg, &bytes).expect("valid checkpoint");
        let got = finish(&mut fleet);
        assert_eq!(
            expected.0, got.0,
            "per-host metrics diverged at {shards} shard(s)"
        );
        assert_eq!(
            expected.1, got.1,
            "final fleet state diverged at {shards} shard(s)"
        );
    }
}

/// Malformed checkpoints are typed errors, never panics, and never
/// silent misrestores — for every kind of damage the crash model can
/// inflict: bit rot, truncation at any prefix, format-version skew,
/// wrong-config replay, and garbage.
#[test]
fn malformed_checkpoints_fail_typed_not_panicking() {
    let cfg = scenarios::fig3(8, true);
    let mut sim = Simulation::new(cfg.clone());
    sim.run_to(SimTime::ZERO + MID);
    let good = sim.save_checkpoint().expect("checkpoint");
    assert!(Simulation::restore_checkpoint(cfg.clone(), &good).is_ok());

    // Bit rot anywhere in the payload trips the envelope checksum.
    let mut rotten = good.clone();
    let mid = rotten.len() / 2;
    rotten[mid] ^= 0x10;
    assert!(matches!(
        Simulation::restore_checkpoint(cfg.clone(), &rotten),
        Err(SnapError::Checksum) | Err(SnapError::Corrupt(_))
    ));

    // Truncation at every prefix length over a stride: typed, no panic.
    for cut in (0..good.len()).step_by(good.len() / 23 + 1) {
        assert!(
            Simulation::restore_checkpoint(cfg.clone(), &good[..cut]).is_err(),
            "truncation to {cut} bytes must fail typed"
        );
    }

    // Format-version skew (bytes 8..12 hold the little-endian version).
    let mut future = good.clone();
    future[8] = future[8].wrapping_add(1);
    match Simulation::restore_checkpoint(cfg.clone(), &future) {
        Err(SnapError::BadVersion { found, expected }) => {
            assert_ne!(found, expected);
        }
        other => panic!("expected BadVersion, got {other:?}", other = other.err()),
    }

    // Replaying against a different configuration is refused up front.
    let mut other_cfg = cfg.clone();
    other_cfg.seed ^= 1;
    assert!(matches!(
        Simulation::restore_checkpoint(other_cfg, &good),
        Err(SnapError::Corrupt(_))
    ));

    // Arbitrary garbage is a bad magic, not a crash.
    assert!(matches!(
        Simulation::restore_checkpoint(cfg, b"not a checkpoint at all"),
        Err(SnapError::BadMagic) | Err(SnapError::Eof) | Err(SnapError::Truncated)
    ));
}
