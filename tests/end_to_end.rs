//! Cross-crate integration tests: end-to-end invariants of the full
//! simulated testbed (senders → fabric → NIC → PCIe → IOMMU → memory →
//! receiver cores → ACKs → senders).

use hostcc::experiment::{run as try_run, RunPlan};
use hostcc::model::ThroughputModel;
use hostcc::scenarios;
use hostcc::TestbedConfig;

/// `experiment::run` is panic-free; these tests only use configurations
/// known to be valid and to make progress, so unwrap at the edge.
fn run(cfg: TestbedConfig, plan: RunPlan) -> hostcc::RunMetrics {
    try_run(cfg, plan).expect("test config runs")
}

fn quick(cfg: TestbedConfig) -> hostcc::RunMetrics {
    run(cfg, RunPlan::quick())
}

fn small(threads: u32) -> TestbedConfig {
    TestbedConfig {
        senders: 8,
        receiver_threads: threads,
        ..TestbedConfig::default()
    }
}

#[test]
fn full_stack_is_deterministic() {
    let a = quick(small(4));
    let b = quick(small(4));
    assert_eq!(a.delivered_packets, b.delivered_packets);
    assert_eq!(a.delivered_payload_bytes, b.delivered_payload_bytes);
    assert_eq!(a.host_drops(), b.host_drops());
    assert_eq!(a.iotlb_misses, b.iotlb_misses);
    assert_eq!(a.retransmits, b.retransmits);
    assert_eq!(a.rtt.p99(), b.rtt.p99());
}

#[test]
fn different_seeds_change_details_not_shape() {
    let mut cfg2 = small(4);
    cfg2.seed = 999;
    let a = quick(small(4));
    let b = quick(cfg2);
    // Some micro-level detail differs (the CPU-bound regime can pin the
    // delivered count, so compare a broader fingerprint)...
    // (quantiles are bucket-quantised, so compare the exact means)
    let fp = |m: &hostcc::RunMetrics| (m.rtt.mean(), m.host_delay.mean());
    assert_ne!(fp(&a), fp(&b), "different seeds should differ in detail");
    // ...but throughput agrees within a few percent.
    let (ta, tb) = (a.app_throughput_gbps(), b.app_throughput_gbps());
    assert!(
        (ta - tb).abs() / ta < 0.05,
        "seed changed throughput too much: {ta} vs {tb}"
    );
}

#[test]
fn iommu_off_never_walks() {
    let m = quick(scenarios::fig3(12, false));
    assert_eq!(m.iotlb_misses, 0);
    assert_eq!(m.iotlb_lookups, 0);
    assert_eq!(m.walk_memory_accesses, 0);
}

#[test]
fn iommu_on_charges_per_packet_translations() {
    let m = quick(scenarios::fig3(12, true));
    // Four translated ranges per packet (descriptor, payload, CQE, ACK).
    let per_pkt = m.iotlb_lookups as f64 / m.delivered_packets as f64;
    assert!(
        (3.5..6.5).contains(&per_pkt),
        "lookups per packet {per_pkt} out of range"
    );
}

#[test]
fn cpu_ramp_matches_core_count() {
    let t2 = quick(small(2)).app_throughput_gbps();
    let t4 = quick(small(4)).app_throughput_gbps();
    // Two cores ~23 Gbps, four ~46 Gbps: linear within tolerance.
    assert!((t2 - 23.0).abs() < 3.5, "2 cores: {t2}");
    assert!((t4 / t2 - 2.0).abs() < 0.3, "ramp 2->4: {t2} -> {t4}");
}

#[test]
fn host_delay_is_regulated_in_cpu_bound_regime() {
    // With the CPU as bottleneck, Swift's endpoint window should pin the
    // host delay near (just above) its 100 us target.
    let m = run(small(2), RunPlan::default());
    let p50 = m.host_delay_p50_us();
    assert!(
        (60.0..160.0).contains(&p50),
        "CPU-bound host delay p50 {p50} should hover near the 100 us target"
    );
    assert_eq!(m.host_drops(), 0, "no drops in the CPU-bound regime");
}

#[test]
fn packet_conservation_without_drops() {
    let m = quick(small(4));
    assert_eq!(m.host_drops(), 0);
    // Payload accounting: delivered bytes = delivered packets x MTU.
    assert_eq!(
        m.delivered_payload_bytes,
        m.delivered_packets * 4096,
        "payload accounting must be exact"
    );
    // Wire arrivals at the NIC are at least the delivered packets' bytes.
    assert!(m.nic_arrival_wire_bytes >= m.delivered_packets * 4452);
}

#[test]
fn congested_point_reproduces_blind_spot() {
    // The headline phenomenon at full scale (kept to one run for test
    // time): IOTLB-bound, sustained drops, host delay below target.
    let m = run(scenarios::fig3(14, true), RunPlan::default());
    assert!(
        m.drop_rate() > 0.005,
        "expected drops, got {}",
        m.drop_rate()
    );
    assert!(
        m.host_delay_p50_us() < 110.0,
        "median host delay {} should sit at/below the CC target",
        m.host_delay_p50_us()
    );
    assert!(
        m.nic_buffer_peak_bytes > 900 * 1024,
        "NIC buffer should brush its capacity"
    );
    // And the model agrees with the measurement in this regime.
    let model = ThroughputModel::from_config(&scenarios::fig3(14, true));
    let predicted = model.app_throughput_gbps(m.iotlb_misses_per_packet());
    let measured = m.app_throughput_gbps();
    assert!(
        (predicted - measured).abs() / measured < 0.2,
        "model {predicted} vs measured {measured}"
    );
}

#[test]
fn antagonist_degrades_throughput_at_low_link_utilisation() {
    let clean = run(scenarios::fig6(0, false), RunPlan::default());
    let noisy = run(scenarios::fig6(12, false), RunPlan::default());
    assert!(
        noisy.app_throughput_gbps() < clean.app_throughput_gbps() * 0.9,
        "12 antagonist cores should cost >10%: {} vs {}",
        noisy.app_throughput_gbps(),
        clean.app_throughput_gbps()
    );
    assert!(noisy.host_drops() > 0, "bus contention should cause drops");
    assert!(
        noisy.link_utilization(100e9) < 0.9,
        "drops must occur below full link utilisation"
    );
}

#[test]
fn hugepages_outperform_small_pages() {
    let huge = run(scenarios::fig4(12, true), RunPlan::default());
    let small_pages = run(scenarios::fig4(12, false), RunPlan::default());
    assert!(
        small_pages.iotlb_misses_per_packet() > huge.iotlb_misses_per_packet(),
        "4K pages must miss more: {} vs {}",
        small_pages.iotlb_misses_per_packet(),
        huge.iotlb_misses_per_packet()
    );
    assert!(
        small_pages.app_throughput_gbps() < huge.app_throughput_gbps(),
        "4K pages must be slower: {} vs {}",
        small_pages.app_throughput_gbps(),
        huge.app_throughput_gbps()
    );
}

#[test]
fn bigger_iotlb_recovers_throughput() {
    let base = run(scenarios::fig3(14, true), RunPlan::default());
    let big = run(
        scenarios::with_iotlb_entries(scenarios::fig3(14, true), 1024),
        RunPlan::default(),
    );
    assert!(big.iotlb_misses_per_packet() < base.iotlb_misses_per_packet() * 0.5);
    assert!(big.app_throughput_gbps() > base.app_throughput_gbps());
}

#[test]
fn larger_nic_buffer_restores_the_cc_signal() {
    let base = run(scenarios::fig3(14, true), RunPlan::default());
    let big = run(
        scenarios::with_nic_buffer(scenarios::fig3(14, true), 4 << 20),
        RunPlan::default(),
    );
    // With 4 MiB of buffer the drain time exceeds 100 us, Swift sees the
    // delay, and drops shrink dramatically.
    assert!(
        big.drop_rate() < base.drop_rate() * 0.5,
        "4 MiB buffer should cut drops: {} -> {}",
        base.drop_rate(),
        big.drop_rate()
    );
    assert!(
        big.host_delay_p99_us() > 100.0,
        "the signal should now exceed the target"
    );
}

#[test]
fn host_aware_cc_eliminates_drops_at_small_cost() {
    let swift = run(scenarios::fig3(14, true), RunPlan::default());
    let aware = run(
        scenarios::with_host_aware(scenarios::fig3(14, true)),
        RunPlan::default(),
    );
    assert!(
        aware.drop_rate() < swift.drop_rate() * 0.1,
        "occupancy signal should all but eliminate drops: {} -> {}",
        swift.drop_rate(),
        aware.drop_rate()
    );
    assert!(
        aware.app_throughput_gbps() > swift.app_throughput_gbps() * 0.9,
        "at no more than ~10% throughput cost: {} -> {}",
        swift.app_throughput_gbps(),
        aware.app_throughput_gbps()
    );
    // The occupancy window keeps the buffer well below capacity.
    assert!(aware.nic_buffer_peak_bytes < 900 * 1024);
}

#[test]
fn hot_buffers_with_ddio_recover_both_congested_points() {
    // IOTLB-bound point.
    let iommu_bound = run(
        scenarios::with_hot_buffers(scenarios::fig3(14, true)),
        RunPlan::default(),
    );
    assert!(
        iommu_bound.app_throughput_gbps() > 90.0,
        "hot pool should fit the IOTLB: {}",
        iommu_bound.app_throughput_gbps()
    );
    assert_eq!(iommu_bound.host_drops(), 0);
    // Bus-bound point: DDIO absorbs the write stream.
    let bus_bound = run(
        scenarios::with_hot_buffers(scenarios::fig6(12, false)),
        RunPlan::default(),
    );
    assert!(
        bus_bound.app_throughput_gbps() > 90.0,
        "DDIO should shield the DMA commits: {}",
        bus_bound.app_throughput_gbps()
    );
    assert_eq!(bus_bound.host_drops(), 0);
}

#[test]
fn strict_iommu_is_strictly_worse_than_loose() {
    let loose = run(scenarios::fig3(14, true), RunPlan::default());
    let strict = run(
        scenarios::with_strict_iommu(scenarios::fig3(14, true)),
        RunPlan::default(),
    );
    assert!(
        strict.app_throughput_gbps() < loose.app_throughput_gbps() * 0.8,
        "strict mode must cost >20%: {} vs {}",
        strict.app_throughput_gbps(),
        loose.app_throughput_gbps()
    );
    assert!(
        strict.iotlb_misses_per_packet() > loose.iotlb_misses_per_packet(),
        "per-buffer invalidation must raise misses"
    );
}

#[test]
fn duty_cycle_reduces_average_utilisation() {
    let mut bursty = scenarios::fig3(12, true);
    bursty.duty_cycle = 0.3;
    let m = run(bursty, RunPlan::default());
    let util = m.link_utilization(100e9);
    assert!(
        util < 0.5,
        "30% duty cycle should keep average utilisation low: {util}"
    );
    // Traffic still flows during bursts.
    assert!(m.delivered_packets > 10_000);
}

#[test]
fn occupancy_samples_cover_the_measurement_window() {
    let m = run(scenarios::fig3(12, true), RunPlan::default());
    assert!(!m.occupancy_samples.is_empty());
    // Samples are time-ordered and within the window.
    let mut last = 0;
    for &(t, occ) in &m.occupancy_samples {
        assert!(t >= last);
        assert!(occ <= 1 << 20, "occupancy within buffer capacity");
        last = t;
    }
    assert!(last as u128 <= m.measured.as_nanos() as u128 + 1);
}
