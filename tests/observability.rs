//! Integration tests for the observability layer: tracing must never
//! perturb simulation results, the event ring must honour its capacity,
//! the stage breakdown must decompose host delay exactly, and both
//! exporters (Chrome trace JSON, metrics JSON) must emit valid JSON
//! with the expected shape.

use hostcc::experiment::{run as try_run, run_traced as try_run_traced, RunPlan};
use hostcc::substrate::trace::json;
use hostcc::{chrome_trace_json, metrics_json, scenarios, Simulation, Stage, TraceConfig};

fn cfg() -> hostcc::TestbedConfig {
    let mut cfg = scenarios::fig3(8, true);
    cfg.senders = 6;
    cfg
}

/// These tests drive known-valid configurations; unwrap the panic-free
/// experiment API at the edge.
fn run(cfg: hostcc::TestbedConfig, plan: RunPlan) -> hostcc::RunMetrics {
    try_run(cfg, plan).expect("test config runs")
}

fn run_traced(
    cfg: hostcc::TestbedConfig,
    plan: RunPlan,
    trace: TraceConfig,
) -> (hostcc::RunMetrics, Simulation) {
    try_run_traced(cfg, plan, trace).expect("test config runs traced")
}

/// Tracing is observational only: a traced run produces bit-identical
/// metrics to an untraced run of the same configuration.
#[test]
fn traced_run_is_bit_identical_to_untraced() {
    let plan = RunPlan::quick();
    let base = run(cfg(), plan);
    let (traced, sim) = run_traced(
        cfg(),
        plan,
        TraceConfig::enabled(50_000)
            .with_sampling(4)
            .with_timeline(10_000),
    );
    assert!(!sim.world().tracer.is_empty(), "tracer captured nothing");
    assert_eq!(base.delivered_packets, traced.delivered_packets);
    assert_eq!(base.host_drops(), traced.host_drops());
    assert_eq!(base.iotlb_misses, traced.iotlb_misses);
    assert_eq!(base.data_packets_sent, traced.data_packets_sent);
    assert_eq!(base.host_delay.count(), traced.host_delay.count());
    assert_eq!(base.host_delay.sum(), traced.host_delay.sum());
    assert_eq!(base.retransmits, traced.retransmits);
}

/// The event ring never holds more than its configured capacity: once
/// eviction has kicked in, the ring sits exactly at capacity.
#[test]
fn tracer_ring_respects_capacity() {
    let capacity = 512;
    let (_, sim) = run_traced(cfg(), RunPlan::quick(), TraceConfig::enabled(capacity));
    let tracer = &sim.world().tracer;
    assert!(tracer.evicted() > 0, "run too small to exercise eviction");
    assert_eq!(tracer.len(), capacity, "full ring must sit at capacity");
    assert!(tracer.offered() > 0, "sampling gate never consulted");
}

/// The per-stage breakdown decomposes the host-delay histogram exactly,
/// to the nanosecond, on a real run.
#[test]
fn stage_breakdown_sums_to_host_delay() {
    let m = run(cfg(), RunPlan::quick());
    assert!(m.delivered_packets > 0);
    assert_eq!(m.stage_breakdown.count(), m.host_delay.count());
    assert_eq!(m.stage_breakdown.total_sum_ns(), m.host_delay.sum());
    // Shares form a distribution over the five stages.
    let total: f64 = hostcc::StageClass::ALL
        .iter()
        .map(|c| m.stage_breakdown.share(*c))
        .sum();
    assert!((total - 1.0).abs() < 1e-9, "stage shares sum to {total}");
}

/// The Chrome trace exporter emits valid JSON in trace-event format:
/// a `traceEvents` array whose entries carry ph/ts/name, including
/// complete ("X") spans for the packet lifecycle stages.
#[test]
fn chrome_trace_json_parses_back() {
    let (_, sim) = run_traced(
        cfg(),
        RunPlan::quick(),
        TraceConfig::enabled(20_000)
            .with_sampling(8)
            .with_timeline(50_000),
    );
    let w = sim.world();
    let out = chrome_trace_json(w.tracer.events(), &w.timeline);
    let v = json::parse(&out).expect("chrome trace must be valid JSON");
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut spans = 0;
    for ev in events {
        let ph = ev.get("ph").and_then(|p| p.as_str()).expect("ph field");
        assert!(ev.get("ts").and_then(|t| t.as_f64()).is_some(), "ts field");
        assert!(
            ev.get("name").and_then(|n| n.as_str()).is_some(),
            "name field"
        );
        if ph == "X" {
            spans += 1;
            assert!(ev.get("dur").and_then(|d| d.as_f64()).is_some());
        }
    }
    assert!(spans > 0, "no complete spans in trace");
    // Per-packet lifecycle stages appear by their dotted names.
    for stage in [Stage::PcieTransfer, Stage::CpuProcess] {
        assert!(
            events
                .iter()
                .any(|e| e.get("name").and_then(|n| n.as_str()) == Some(stage.name())),
            "missing stage {:?}",
            stage
        );
    }
}

/// The metrics JSON snapshot parses back and is consistent with the
/// in-memory metrics, including the per-stage breakdown and counters.
#[test]
fn metrics_json_parses_back_and_matches() {
    let (m, sim) = run_traced(cfg(), RunPlan::quick(), TraceConfig::enabled(10_000));
    let out = metrics_json(&m, &sim.world().counters, sim.profile());
    let v = json::parse(&out).expect("metrics snapshot must be valid JSON");
    let delivered = v
        .get("delivered_packets")
        .and_then(|x| x.as_f64())
        .expect("delivered_packets");
    assert_eq!(delivered as u64, m.delivered_packets);
    let sb = v.get("stage_breakdown").expect("stage_breakdown object");
    let packets = sb.get("packets").and_then(|x| x.as_f64()).unwrap();
    assert_eq!(packets as u64, m.stage_breakdown.count());
    let counters = v.get("counters").expect("counters object");
    let nic_delivered = counters
        .get("nic.delivered_packets")
        .and_then(|x| x.as_f64())
        .expect("nic.delivered_packets counter");
    assert_eq!(nic_delivered as u64, m.delivered_packets);
}

/// Telemetry and tracing compose without perturbing each other: a traced
/// run with telemetry on produces a bit-identical sample stream and
/// episode table to an untraced telemetry run, and bit-identical metrics
/// to a plain run.
#[test]
fn telemetry_is_bit_identical_traced_and_untraced() {
    let plan = RunPlan::quick();
    let telemetry_cfg = hostcc::TelemetryConfig::enabled();
    let mut tcfg = cfg();
    tcfg.telemetry = telemetry_cfg;

    let mut plain = Simulation::new(tcfg.clone());
    let m_plain = plain
        .try_run(plan.warmup, plan.measure)
        .expect("plain telemetry run");

    let (m_traced, traced) = run_traced(
        tcfg,
        plan,
        TraceConfig::enabled(50_000)
            .with_sampling(4)
            .with_timeline(10_000),
    );
    assert!(!traced.world().tracer.is_empty());

    let s_plain: Vec<_> = plain.world().telemetry.samples().copied().collect();
    let s_traced: Vec<_> = traced.world().telemetry.samples().copied().collect();
    assert!(!s_plain.is_empty());
    assert_eq!(s_plain, s_traced, "tracing perturbed the sample stream");
    assert_eq!(m_plain.telemetry, m_traced.telemetry);
    assert_eq!(m_plain.delivered_packets, m_traced.delivered_packets);
    assert_eq!(m_plain.host_delay.sum(), m_traced.host_delay.sum());

    // And telemetry leaves the *base* metrics untouched relative to a
    // run with no observability at all.
    let base = run(cfg(), plan);
    assert_eq!(base.delivered_packets, m_plain.delivered_packets);
    assert_eq!(base.host_delay.sum(), m_plain.host_delay.sum());
    assert_eq!(base.rtt.sum(), m_plain.rtt.sum());
}

/// Telemetry-off runs carry no telemetry artifacts anywhere: no summary
/// on the metrics, no "telemetry" key in the JSON export (the golden
/// digests in queue_equivalence.rs depend on this byte-identity).
#[test]
fn zero_telemetry_runs_have_no_telemetry_artifacts() {
    let (m, sim) = run_traced(cfg(), RunPlan::quick(), TraceConfig::enabled(1_000));
    assert!(m.telemetry.is_none());
    assert_eq!(sim.world().telemetry.samples_taken(), 0);
    let out = metrics_json(&m, &sim.world().counters, sim.profile());
    assert!(
        !out.contains("\"telemetry\""),
        "telemetry-off export must not mention telemetry"
    );
}
