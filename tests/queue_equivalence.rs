//! Queue-implementation equivalence: the timing-wheel event queue must be
//! a *perfect* drop-in for the reference binary heap.
//!
//! The engine's determinism contract is that event order depends only on
//! `(time, insertion seq)`. Both queue implementations promise that order
//! bit-for-bit, so the same seeded scenario driven through either must
//! produce identical metrics — down to histogram quantiles and occupancy
//! sample vectors — and dispatch exactly the same number of events.

use hostcc::experiment::RunPlan;
use hostcc::{metrics_json, scenarios, RunMetrics, Simulation, TestbedConfig};

fn shrink(mut cfg: TestbedConfig) -> TestbedConfig {
    cfg.senders = 8;
    cfg.receiver_threads = 4;
    cfg
}

/// Run one config on both queues and assert bit-identical outcomes.
fn assert_equivalent(name: &str, cfg: TestbedConfig) {
    let plan = RunPlan::quick();

    let mut wheel = Simulation::new(cfg.clone());
    let m_wheel = wheel.run(plan.warmup, plan.measure);
    let mut heap = Simulation::with_heap_queue(cfg);
    let m_heap = heap.run(plan.warmup, plan.measure);

    // Identical dispatched-event counts.
    assert_eq!(
        wheel.dispatched_total(),
        heap.dispatched_total(),
        "{name}: dispatched-event counts diverged"
    );

    // Identical RunMetrics. The JSON export covers every headline field,
    // both latency histograms and the per-stage breakdown; the raw
    // field-level checks below catch anything the export rounds.
    let json_wheel = metrics_json(&m_wheel, &wheel.world().counters, None);
    let json_heap = metrics_json(&m_heap, &heap.world().counters, None);
    assert_eq!(json_wheel, json_heap, "{name}: metrics JSON diverged");
    assert_raw_metrics_identical(name, &m_wheel, &m_heap);
}

fn assert_raw_metrics_identical(name: &str, a: &RunMetrics, b: &RunMetrics) {
    assert_eq!(a.measured, b.measured, "{name}: measured");
    assert_eq!(
        a.delivered_payload_bytes, b.delivered_payload_bytes,
        "{name}: payload"
    );
    assert_eq!(a.delivered_packets, b.delivered_packets, "{name}: packets");
    assert_eq!(a.data_packets_sent, b.data_packets_sent, "{name}: sent");
    assert_eq!(
        (a.drops_buffer_full, a.drops_no_descriptor, a.drops_fabric),
        (b.drops_buffer_full, b.drops_no_descriptor, b.drops_fabric),
        "{name}: drops"
    );
    assert_eq!(
        (a.iotlb_lookups, a.iotlb_misses, a.walk_memory_accesses),
        (b.iotlb_lookups, b.iotlb_misses, b.walk_memory_accesses),
        "{name}: iotlb"
    );
    assert_eq!(a.retransmits, b.retransmits, "{name}: retransmits");
    assert_eq!(a.timeouts, b.timeouts, "{name}: timeouts");
    assert_eq!(a.mean_cwnd, b.mean_cwnd, "{name}: cwnd");
    assert_eq!(
        a.nic_buffer_peak_bytes, b.nic_buffer_peak_bytes,
        "{name}: peak buffer"
    );
    assert_eq!(
        a.occupancy_samples, b.occupancy_samples,
        "{name}: occupancy samples"
    );
    // Histograms: exact counts and sums (sums are tracked outside the
    // buckets, so equality here means every sample value matched).
    assert_eq!(a.host_delay.count(), b.host_delay.count());
    assert_eq!(a.host_delay.sum(), b.host_delay.sum());
    assert_eq!(a.host_delay.min(), b.host_delay.min());
    assert_eq!(a.host_delay.max(), b.host_delay.max());
    assert_eq!(a.rtt.count(), b.rtt.count());
    assert_eq!(a.rtt.sum(), b.rtt.sum());
    assert_eq!(
        a.stage_breakdown.total_sum_ns(),
        b.stage_breakdown.total_sum_ns(),
        "{name}: stage breakdown"
    );
}

#[test]
fn incast_scenario_is_queue_equivalent() {
    assert_equivalent("incast", shrink(scenarios::baseline()));
}

#[test]
fn antagonist_scenario_is_queue_equivalent() {
    assert_equivalent("antagonist", shrink(scenarios::fig6(8, true)));
}

#[test]
fn strict_iommu_scenario_is_queue_equivalent() {
    assert_equivalent(
        "strict-iommu",
        shrink(scenarios::with_strict_iommu(scenarios::baseline())),
    );
}
