//! Queue-implementation equivalence: the timing-wheel event queue must be
//! a *perfect* drop-in for the reference binary heap — and the
//! slab/handle-based datapath a perfect drop-in for the old by-value one.
//!
//! The engine's determinism contract is that event order depends only on
//! `(time, insertion seq)`. Both queue implementations promise that order
//! bit-for-bit, so the same seeded scenario driven through either must
//! produce identical metrics — down to histogram quantiles and occupancy
//! sample vectors — and dispatch exactly the same number of events.
//!
//! The golden-digest tests at the bottom pin today's datapath to digests
//! captured from the pre-slab representation (events carrying `Packet`
//! and `DmaJob` by value): the handle refactor must not move a single
//! metric bit on any engine-bench scenario.

use hostcc::experiment::RunPlan;
use hostcc::{metrics_json, scenarios, RunMetrics, Simulation, TestbedConfig};

fn shrink(mut cfg: TestbedConfig) -> TestbedConfig {
    cfg.senders = 8;
    cfg.receiver_threads = 4;
    cfg
}

/// Run one config on both queues and assert bit-identical outcomes.
fn assert_equivalent(name: &str, cfg: TestbedConfig) {
    let plan = RunPlan::quick();

    let mut wheel = Simulation::new(cfg.clone());
    let m_wheel = wheel.run(plan.warmup, plan.measure);
    let mut heap = Simulation::with_heap_queue(cfg);
    let m_heap = heap.run(plan.warmup, plan.measure);

    // Identical dispatched-event counts.
    assert_eq!(
        wheel.dispatched_total(),
        heap.dispatched_total(),
        "{name}: dispatched-event counts diverged"
    );

    // Identical RunMetrics. The JSON export covers every headline field,
    // both latency histograms and the per-stage breakdown; the raw
    // field-level checks below catch anything the export rounds.
    let json_wheel = metrics_json(&m_wheel, &wheel.world().counters, None);
    let json_heap = metrics_json(&m_heap, &heap.world().counters, None);
    assert_eq!(json_wheel, json_heap, "{name}: metrics JSON diverged");
    assert_raw_metrics_identical(name, &m_wheel, &m_heap);
}

fn assert_raw_metrics_identical(name: &str, a: &RunMetrics, b: &RunMetrics) {
    assert_eq!(a.measured, b.measured, "{name}: measured");
    assert_eq!(
        a.delivered_payload_bytes, b.delivered_payload_bytes,
        "{name}: payload"
    );
    assert_eq!(a.delivered_packets, b.delivered_packets, "{name}: packets");
    assert_eq!(a.data_packets_sent, b.data_packets_sent, "{name}: sent");
    assert_eq!(
        (a.drops_buffer_full, a.drops_no_descriptor, a.drops_fabric),
        (b.drops_buffer_full, b.drops_no_descriptor, b.drops_fabric),
        "{name}: drops"
    );
    assert_eq!(
        (a.iotlb_lookups, a.iotlb_misses, a.walk_memory_accesses),
        (b.iotlb_lookups, b.iotlb_misses, b.walk_memory_accesses),
        "{name}: iotlb"
    );
    assert_eq!(a.retransmits, b.retransmits, "{name}: retransmits");
    assert_eq!(a.timeouts, b.timeouts, "{name}: timeouts");
    assert_eq!(a.mean_cwnd, b.mean_cwnd, "{name}: cwnd");
    assert_eq!(
        a.nic_buffer_peak_bytes, b.nic_buffer_peak_bytes,
        "{name}: peak buffer"
    );
    assert_eq!(
        a.occupancy_samples, b.occupancy_samples,
        "{name}: occupancy samples"
    );
    // Histograms: exact counts and sums (sums are tracked outside the
    // buckets, so equality here means every sample value matched).
    assert_eq!(a.host_delay.count(), b.host_delay.count());
    assert_eq!(a.host_delay.sum(), b.host_delay.sum());
    assert_eq!(a.host_delay.min(), b.host_delay.min());
    assert_eq!(a.host_delay.max(), b.host_delay.max());
    assert_eq!(a.rtt.count(), b.rtt.count());
    assert_eq!(a.rtt.sum(), b.rtt.sum());
    assert_eq!(
        a.stage_breakdown.total_sum_ns(),
        b.stage_breakdown.total_sum_ns(),
        "{name}: stage breakdown"
    );
}

/// FNV-1a-64 over the exported metrics JSON: a one-bit change anywhere in
/// the headline metrics, histograms, or stage breakdown moves the digest.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Pin a scenario to a golden digest captured from the by-value datapath
/// (events carrying `Packet`/`DmaJob` directly, before the slab refactor).
/// `golden = (dispatched, delivered, (lookups, misses, walks), fnv, len)`.
///
/// Runs twice — slot-drain batching on (the library default) and off —
/// and holds both runs to the *same* digest: batched dispatch must be
/// bit-for-bit invisible in every exported metric.
fn assert_golden(name: &str, cfg: TestbedConfig, golden: (u64, u64, (u64, u64, u64), u64, usize)) {
    let plan = RunPlan::quick();
    for batched in [true, false] {
        let mode = if batched { "batched" } else { "per-event" };
        let mut sim = Simulation::new(cfg.clone());
        sim.set_batched(batched);
        let m = sim.run(plan.warmup, plan.measure);
        let json = metrics_json(&m, &sim.world().counters, None);
        let (dispatched, delivered, iotlb, fnv, len) = golden;
        assert_eq!(
            sim.dispatched_total(),
            dispatched,
            "{name} ({mode}): dispatched"
        );
        assert_eq!(m.delivered_packets, delivered, "{name} ({mode}): delivered");
        assert_eq!(
            (m.iotlb_lookups, m.iotlb_misses, m.walk_memory_accesses),
            iotlb,
            "{name} ({mode}): iotlb"
        );
        assert_eq!(json.len(), len, "{name} ({mode}): metrics JSON length");
        assert_eq!(
            fnv64(json.as_bytes()),
            fnv,
            "{name} ({mode}): metrics JSON digest diverged from the by-value datapath"
        );
    }
}

#[test]
fn golden_incast_matches_by_value_datapath() {
    assert_golden(
        "incast",
        scenarios::fig3(12, true),
        (
            380592,
            26857,
            (107444, 43870, 160680),
            0x88de29425ec84dd2,
            2124,
        ),
    );
}

#[test]
fn golden_antagonist_sweep_matches_by_value_datapath() {
    assert_golden(
        "antagonist_0",
        scenarios::fig6(0, true),
        (
            380592,
            26857,
            (107444, 43870, 160680),
            0x88de29425ec84dd2,
            2124,
        ),
    );
    assert_golden(
        "antagonist_8",
        scenarios::fig6(8, true),
        (
            297964,
            20444,
            (81789, 30737, 112411),
            0xc0af09a8f4d253dc,
            2108,
        ),
    );
    assert_golden(
        "antagonist_15",
        scenarios::fig6(15, true),
        (
            236160,
            17086,
            (68376, 20822, 75560),
            0xdad182da58697905,
            2108,
        ),
    );
}

#[test]
fn golden_cluster_fleet_matches_by_value_datapath() {
    let goldens = [
        (387557, 28061, (112136, 0, 0), 0xe3e999e4e962f414, 1978),
        (
            368793,
            25738,
            (102982, 39954, 146063),
            0x3acf8484a8bd19c7,
            2132,
        ),
    ];
    for (host, golden) in goldens.into_iter().enumerate() {
        let mut cfg = scenarios::with_mixed_reads(scenarios::baseline());
        cfg.seed = 0xF1EE7 + host as u64;
        cfg.receiver_threads = 8 + 4 * (host as u32 % 2);
        cfg.antagonist_cores = 4 * (host as u32 % 3);
        assert_golden(&format!("fleet_{host}"), cfg, golden);
    }
}

/// Randomised differential test at the simulation level: random scenario
/// draws (seed, fan-in, core counts, antagonist load, IOMMU mode, read
/// mix, recovery policy) must produce identical dispatch counts and
/// bit-identical metrics with slot-drain batching on and off. The
/// queue-level twin lives in `hostcc-sim`'s `queue.rs` (200k-op
/// `pop`-vs-`pop_slot` sequence check); this covers the full datapath
/// including the batch handlers in `world.rs`.
#[test]
fn random_scenarios_are_batching_invariant() {
    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    let plan = RunPlan::quick();
    let mut s = 0x5EED_CAFE_u64;
    for draw in 0..4 {
        let mut cfg = if lcg(&mut s).is_multiple_of(2) {
            scenarios::with_mixed_reads(scenarios::baseline())
        } else {
            scenarios::baseline()
        };
        if lcg(&mut s).is_multiple_of(2) {
            cfg = scenarios::with_strict_iommu(cfg);
        }
        cfg.seed = lcg(&mut s);
        cfg.senders = 4 + (lcg(&mut s) % 6) as u32;
        cfg.receiver_threads = 2 + (lcg(&mut s) % 6) as u32;
        cfg.antagonist_cores = (lcg(&mut s) % 12) as u32;
        cfg.flow.partial_ack_rtx = lcg(&mut s).is_multiple_of(2);
        let name = format!("draw_{draw}");

        let mut batched = Simulation::new(cfg.clone());
        let mb = batched.run(plan.warmup, plan.measure);
        let mut per_event = Simulation::new(cfg);
        per_event.set_batched(false);
        let mp = per_event.run(plan.warmup, plan.measure);

        assert_eq!(
            batched.dispatched_total(),
            per_event.dispatched_total(),
            "{name}: dispatched-event counts diverged"
        );
        let jb = metrics_json(&mb, &batched.world().counters, None);
        let jp = metrics_json(&mp, &per_event.world().counters, None);
        assert_eq!(jb, jp, "{name}: metrics JSON diverged");
        assert_raw_metrics_identical(&name, &mb, &mp);
    }
}

/// The six coarse-time goldens: the same engine-bench scenarios as the
/// exact goldens above, run through `scenarios::with_coarse_time` (64 ns
/// grid + chain fusion). Coarse time is an explicit opt-in that trades
/// sub-slot timing for dispatch batching, so it pins its *own* digests —
/// these values were captured when quantisation moved to the event-queue
/// boundary (components keep exact internal clocks, so coarse links no
/// longer cap at one packet per grid step) and any drift from them is a
/// regression. Each scenario still runs with
/// batching on and off against the same digest: quantisation must not
/// break the batching-invariance contract.
fn coarse(cfg: TestbedConfig) -> TestbedConfig {
    scenarios::with_coarse_time(cfg)
}

fn fleet_cfg(host: usize) -> TestbedConfig {
    let mut cfg = scenarios::with_mixed_reads(scenarios::baseline());
    cfg.seed = 0xF1EE7 + host as u64;
    cfg.receiver_threads = 8 + 4 * (host as u32 % 2);
    cfg.antagonist_cores = 4 * (host as u32 % 3);
    cfg
}

#[test]
fn golden_coarse_incast_and_antagonist_sweep() {
    assert_golden(
        "coarse_incast",
        coarse(scenarios::fig3(12, true)),
        (
            335864,
            26673,
            (106697, 42618, 156067),
            0xfb2869de1addf07a,
            2127,
        ),
    );
    assert_golden(
        "coarse_antagonist_0",
        coarse(scenarios::fig6(0, true)),
        (
            335864,
            26673,
            (106697, 42618, 156067),
            0xfb2869de1addf07a,
            2127,
        ),
    );
    assert_golden(
        "coarse_antagonist_8",
        coarse(scenarios::fig6(8, true)),
        (
            240104,
            19852,
            (79437, 31715, 116302),
            0xc3e142c295a45b7a,
            2112,
        ),
    );
    assert_golden(
        "coarse_antagonist_15",
        coarse(scenarios::fig6(15, true)),
        (
            201092,
            16612,
            (66468, 22861, 83499),
            0xbf0947e23acd7be0,
            2108,
        ),
    );
}

#[test]
fn golden_coarse_cluster_fleet() {
    let goldens = [
        (379320, 28061, (112139, 0, 0), 0xfbbba3d539451854, 1978),
        (
            340579,
            25356,
            (101455, 39808, 145584),
            0xb0d246104ffae67e,
            2129,
        ),
    ];
    for (host, golden) in goldens.into_iter().enumerate() {
        assert_golden(
            &format!("coarse_fleet_{host}"),
            coarse(fleet_cfg(host)),
            golden,
        );
    }
}

/// Re-pinning helper for the coarse goldens (run with
/// `cargo test -p hostcc-integration-tests capture_coarse -- --ignored --nocapture`
/// after an intentional coarse-path change, then paste the printed tuples
/// into the tests above).
#[test]
#[ignore]
fn capture_coarse_goldens() {
    let plan = RunPlan::quick();
    let mut cases: Vec<(String, TestbedConfig)> = vec![
        ("coarse_incast".into(), coarse(scenarios::fig3(12, true))),
        (
            "coarse_antagonist_0".into(),
            coarse(scenarios::fig6(0, true)),
        ),
        (
            "coarse_antagonist_8".into(),
            coarse(scenarios::fig6(8, true)),
        ),
        (
            "coarse_antagonist_15".into(),
            coarse(scenarios::fig6(15, true)),
        ),
    ];
    for host in 0..2 {
        cases.push((format!("coarse_fleet_{host}"), coarse(fleet_cfg(host))));
    }
    for (name, cfg) in cases {
        let mut sim = Simulation::new(cfg);
        let m = sim.run(plan.warmup, plan.measure);
        let json = metrics_json(&m, &sim.world().counters, None);
        println!(
            "{name}: ({}, {}, ({}, {}, {}), {:#x}, {}),",
            sim.dispatched_total(),
            m.delivered_packets,
            m.iotlb_lookups,
            m.iotlb_misses,
            m.walk_memory_accesses,
            fnv64(json.as_bytes()),
            json.len()
        );
    }
}

/// Coarse-time runs keep the queue-equivalence contract too: the
/// hierarchical wheel at a 64 ns slot width and the binary heap with the
/// same push-side quantisation must dispatch identically.
#[test]
fn coarse_incast_scenario_is_queue_equivalent() {
    assert_equivalent("coarse-incast", coarse(shrink(scenarios::baseline())));
}

#[test]
fn incast_scenario_is_queue_equivalent() {
    assert_equivalent("incast", shrink(scenarios::baseline()));
}

#[test]
fn antagonist_scenario_is_queue_equivalent() {
    assert_equivalent("antagonist", shrink(scenarios::fig6(8, true)));
}

#[test]
fn strict_iommu_scenario_is_queue_equivalent() {
    assert_equivalent(
        "strict-iommu",
        shrink(scenarios::with_strict_iommu(scenarios::baseline())),
    );
}
