//! Differential tests for the deterministic parallel engine.
//!
//! The contract under test: thread count AND host→shard placement are
//! *unobservable*. A coupled multi-host fleet must produce bit-identical
//! `RunMetrics`, golden digests, fault counters and telemetry streams at
//! 1, 2, 4 and 5 shards (with batched and per-event dispatch) and under
//! round-robin, reversed, and measured-cost-rebalanced placements; a
//! 1-shard fleet wrapping a single uncoupled host must replay the serial
//! engine's historical goldens bit-for-bit — the epoch slicing itself
//! (super-epoch batching included) must be invisible.

use std::sync::{Arc, Mutex};

use hostcc::experiment::RunPlan;
use hostcc::fleet::{Fleet, FleetConfig, FleetTopology};
use hostcc::substrate::sim::{ParallelEngine, SimDuration};
use hostcc::{
    metrics_json, scenarios, FaultKind, FleetHost, RunMetrics, Simulation, TelemetryConfig,
    TestbedConfig,
};

/// FNV-1a-64 over exported metrics JSON (same digest as the serial
/// golden suite in `queue_equivalence.rs`).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn small_fleet(shards: u32) -> FleetConfig {
    FleetConfig {
        hosts: 5,
        shards,
        base: TestbedConfig {
            senders: 6,
            receiver_threads: 4,
            ..TestbedConfig::default()
        },
        ..FleetConfig::coupled_fleet()
    }
}

fn short_plan() -> RunPlan {
    RunPlan {
        warmup: SimDuration::from_millis(2),
        measure: SimDuration::from_millis(4),
    }
}

/// Run a fleet config and produce one digest tuple per host, plus the
/// fleet-wide epoch and dispatch totals.
fn fleet_digests(cfg: &FleetConfig, batched: bool, plan: RunPlan) -> (Vec<(u64, usize)>, u64, u64) {
    let mut fleet = Fleet::new(cfg).expect("valid fleet");
    for h in fleet.hosts_mut() {
        h.sim_mut().set_batched(batched);
    }
    let metrics = fleet.run(plan).expect("fleet runs");
    let digests = metrics
        .iter()
        .zip(fleet.hosts())
        .map(|(m, h)| {
            let json = metrics_json(m, &h.sim().world().counters, None);
            (fnv64(json.as_bytes()), json.len())
        })
        .collect();
    (digests, fleet.epochs(), fleet.dispatched_total())
}

/// The tentpole differential: the coupled fleet's per-host metrics JSON
/// (headline numbers, histograms, stage breakdowns — everything the
/// exporter covers) is bit-identical at 1/2/4/5 shards (validation caps
/// shards at the host count), with batched and per-event dispatch, and
/// the epoch/dispatch totals agree too.
#[test]
fn fleet_digests_bit_identical_at_any_shard_count() {
    let reference = fleet_digests(&small_fleet(1), true, short_plan());
    assert_eq!(reference.0.len(), 5);
    for shards in [2u32, 4, 5] {
        let got = fleet_digests(&small_fleet(shards), true, short_plan());
        assert_eq!(got, reference, "{shards} shards (batched)");
    }
    for shards in [1u32, 4] {
        let got = fleet_digests(&small_fleet(shards), false, short_plan());
        assert_eq!(got, reference, "{shards} shards (per-event)");
    }
}

/// A tree-topology light-host fleet (the scaling configuration CI
/// pushes to 1k hosts) is shard-count invariant too: topology generality
/// must not introduce any placement- or shard-coupled state.
#[test]
fn tree_fleet_digests_bit_identical_across_shards() {
    let cfg_for = |shards: u32| FleetConfig::light_fleet(32, shards);
    let reference = fleet_digests(&cfg_for(1), true, short_plan());
    assert_eq!(reference.0.len(), 32);
    for shards in [2u32, 4] {
        let got = fleet_digests(&cfg_for(shards), true, short_plan());
        assert_eq!(got, reference, "{shards} shards");
    }
}

/// Fault counters survive sharding: a fleet whose hosts all run a
/// recurring link-flap/replay schedule reports identical per-host
/// `FaultSummary` values at every shard count.
#[test]
fn fault_counters_are_shard_count_invariant() {
    let cfg_for = |shards: u32| {
        let mut cfg = small_fleet(shards);
        cfg.base.faults = cfg.base.faults.clone().recurring(
            FaultKind::LinkFlap,
            SimDuration::from_millis(1),
            SimDuration::from_micros(300),
            SimDuration::from_millis(2),
            3,
        );
        cfg.base.flow.partial_ack_rtx = true;
        cfg
    };
    let run = |shards: u32| {
        let mut fleet = Fleet::new(&cfg_for(shards)).expect("valid fleet");
        fleet.run(short_plan()).expect("fleet runs")
    };
    let reference: Vec<RunMetrics> = run(1);
    let summaries: Vec<_> = reference.iter().map(|m| m.faults).collect();
    assert!(
        summaries
            .iter()
            .all(|s| s.expect("fault plan active").windows_injected > 0),
        "fault windows must actually open: {summaries:?}"
    );
    for shards in [2u32, 4] {
        let got: Vec<_> = run(shards).iter().map(|m| m.faults).collect();
        assert_eq!(got, summaries, "{shards} shards");
    }
}

/// A `Write` sink backed by a shared buffer, so the telemetry JSONL
/// stream can be read back after the fleet (and its worker threads) are
/// done with it.
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Streaming telemetry is shard-count invariant byte-for-byte: each
/// host's JSONL sample stream (timestamps, signal values, episode
/// inputs) is identical whether the fleet ran on 1 or 4 worker threads.
#[test]
fn telemetry_streams_are_shard_count_invariant() {
    let streams = |shards: u32| -> Vec<Vec<u8>> {
        let mut cfg = small_fleet(shards);
        cfg.hosts = 4;
        cfg.base.telemetry = TelemetryConfig::enabled();
        let mut fleet = Fleet::new(&cfg).expect("valid fleet");
        let bufs: Vec<SharedBuf> = fleet
            .hosts_mut()
            .iter_mut()
            .map(|h| {
                let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
                h.sim_mut()
                    .world_mut()
                    .telemetry
                    .set_sink(Box::new(buf.clone()));
                buf
            })
            .collect();
        fleet.run(short_plan()).expect("fleet runs");
        bufs.into_iter()
            .map(|b| std::mem::take(&mut *b.0.lock().unwrap()))
            .collect()
    };
    let reference = streams(1);
    assert!(
        reference.iter().all(|s| s.len() > 1000),
        "sampler must actually stream: {:?}",
        reference.iter().map(Vec::len).collect::<Vec<_>>()
    );
    for shards in [2u32, 4] {
        assert_eq!(streams(shards), reference, "{shards} shards");
    }
}

/// Drive one uncoupled host through the parallel engine the way
/// `Simulation::try_run` drives the serial engine: warmup slice, arm,
/// measure slice, snapshot.
fn run_on_parallel_engine(cfg: TestbedConfig, plan: RunPlan) -> (RunMetrics, u64, String) {
    let host = FleetHost::new(Simulation::from_testbed(hostcc::Testbed::new(cfg)));
    let mut engine = ParallelEngine::new(vec![host], 1, SimDuration::from_micros(8));
    let t0 = engine.hosts()[0].sim().now();
    let t1 = t0 + plan.warmup;
    engine.run_to(t1);
    engine.hosts_mut()[0].sim_mut().world_mut().arm_metrics(t1);
    let t2 = t1 + plan.measure;
    engine.run_to(t2);
    let m = engine.hosts_mut()[0].sim_mut().world_mut().snapshot(t2);
    let host = &engine.hosts()[0];
    let json = metrics_json(&m, &host.sim().world().counters, None);
    (m, host.sim().dispatched_total(), json)
}

/// A 1-shard fleet host must replay the serial engine bit-for-bit on all
/// six historical golden scenarios — same dispatched-event counts, same
/// metrics-JSON digests the serial suite (`queue_equivalence.rs`) pins.
/// The lookahead-sliced `run_to` loop (an 8 µs epoch grid over a 15 ms
/// run) must be indistinguishable from one big `run_until`.
#[test]
fn one_shard_fleet_matches_the_serial_goldens() {
    let goldens = [
        (
            "incast",
            scenarios::fig3(12, true),
            (380592u64, 26857u64, 0x88de29425ec84dd2u64, 2124usize),
        ),
        (
            "antagonist_0",
            scenarios::fig6(0, true),
            (380592, 26857, 0x88de29425ec84dd2, 2124),
        ),
        (
            "antagonist_8",
            scenarios::fig6(8, true),
            (297964, 20444, 0xc0af09a8f4d253dc, 2108),
        ),
        (
            "antagonist_15",
            scenarios::fig6(15, true),
            (236160, 17086, 0xdad182da58697905, 2108),
        ),
        (
            "fleet_0",
            fleet_cfg(0),
            (387557, 28061, 0xe3e999e4e962f414, 1978),
        ),
        (
            "fleet_1",
            fleet_cfg(1),
            (368793, 25738, 0x3acf8484a8bd19c7, 2132),
        ),
    ];
    let plan = RunPlan::quick();
    for (name, cfg, (dispatched, delivered, fnv, len)) in goldens {
        let (m, got_dispatched, json) = run_on_parallel_engine(cfg, plan);
        assert_eq!(got_dispatched, dispatched, "{name}: dispatched");
        assert_eq!(m.delivered_packets, delivered, "{name}: delivered");
        assert_eq!(json.len(), len, "{name}: metrics JSON length");
        assert_eq!(
            fnv64(json.as_bytes()),
            fnv,
            "{name}: parallel-engine digest diverged from the serial golden"
        );
    }
}

/// The two heterogeneous cluster-host shapes from the serial golden
/// suite (same construction as `queue_equivalence::fleet_cfg`).
fn fleet_cfg(host: usize) -> TestbedConfig {
    let mut cfg = scenarios::with_mixed_reads(scenarios::baseline());
    cfg.seed = 0xF1EE7 + host as u64;
    cfg.receiver_threads = 8 + 4 * (host as u32 % 2);
    cfg.antagonist_cores = 4 * (host as u32 % 3);
    cfg
}

/// Cross-host coupling is real: cutting the fan-in changes what the
/// receiving hosts deliver, so the differential tests above are not
/// vacuously comparing isolated hosts.
#[test]
fn fan_in_actually_couples_hosts() {
    let run = |fanin: u32| {
        let mut cfg = small_fleet(1);
        cfg.topology = FleetTopology::FaninRing { fanin };
        let mut fleet = Fleet::new(&cfg).expect("valid fleet");
        let m = fleet.run(short_plan()).expect("fleet runs");
        m.iter().map(|m| m.delivered_packets).collect::<Vec<_>>()
    };
    let coupled = run(2);
    let isolated = run(0);
    assert_ne!(
        coupled, isolated,
        "remote flows must contribute delivered packets"
    );
}

/// How to place the 5 hosts of `small_fleet` onto shards.
#[derive(Clone, Copy, Debug)]
enum Placement {
    /// The engine default: host `i` on shard `i % S`.
    RoundRobin,
    /// Host `i` on shard `(n - 1 - i) % S` — reverses which worker
    /// drives which host.
    Reversed,
    /// Greedy bin-packing of measured per-host dispatch counts, taken
    /// after the probe slice.
    Rebalanced,
}

/// The placement-invariance differential (the tentpole's load-balancing
/// invariant): per-host metrics digests, fault counters, and telemetry
/// byte streams are bit-identical under round-robin, reversed, and
/// measured-cost-rebalanced host→shard assignments at 1, 2 and 4
/// shards. Every run shares one slice schedule (probe → warmup →
/// measure), because the epoch grid is slice-schedule-dependent; within
/// that schedule, *who executes a host* must never leak into results.
#[test]
fn placement_is_unobservable_in_digests_faults_and_telemetry() {
    let run = |shards: u32, placement: Placement| {
        let mut cfg = small_fleet(shards);
        // Exercise all three observation channels at once: faults and
        // telemetry ride on top of the metrics the digests cover.
        cfg.base.faults = cfg.base.faults.clone().recurring(
            hostcc::FaultKind::LinkFlap,
            SimDuration::from_millis(1),
            SimDuration::from_micros(300),
            SimDuration::from_millis(2),
            3,
        );
        cfg.base.flow.partial_ack_rtx = true;
        cfg.base.telemetry = TelemetryConfig::enabled();
        let mut fleet = Fleet::new(&cfg).expect("valid fleet");
        let bufs: Vec<SharedBuf> = fleet
            .hosts_mut()
            .iter_mut()
            .map(|h| {
                let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
                h.sim_mut()
                    .world_mut()
                    .telemetry
                    .set_sink(Box::new(buf.clone()));
                buf
            })
            .collect();
        let n = cfg.hosts;
        // Probe slice: gives Rebalanced real dispatch counts to pack,
        // and pins the slice schedule for everyone else.
        let probe = fleet.now() + SimDuration::from_micros(300);
        fleet.run_to(probe).expect("probe slice");
        match placement {
            Placement::RoundRobin => {}
            Placement::Reversed => {
                fleet.set_placement((0..n).map(|i| (n - 1 - i) % shards).collect());
            }
            Placement::Rebalanced => {
                fleet.rebalance();
            }
        }
        let plan = short_plan();
        let t1 = fleet.now() + plan.warmup;
        fleet.run_to(t1).expect("warmup");
        for h in fleet.hosts_mut() {
            h.sim_mut().world_mut().arm_metrics(t1);
        }
        let t2 = t1 + plan.measure;
        fleet.run_to(t2).expect("measure");
        let digests: Vec<(u64, Option<hostcc::FaultSummary>)> = fleet
            .hosts_mut()
            .iter_mut()
            .map(|h| {
                let m = h.sim_mut().world_mut().snapshot(t2);
                let json = metrics_json(&m, &h.sim().world().counters, None);
                (fnv64(json.as_bytes()), m.faults)
            })
            .collect();
        let telemetry: Vec<Vec<u8>> = bufs
            .into_iter()
            .map(|b| std::mem::take(&mut *b.0.lock().unwrap()))
            .collect();
        (digests, telemetry, fleet.epochs(), fleet.super_epochs())
    };
    let reference = run(1, Placement::RoundRobin);
    assert!(
        reference
            .0
            .iter()
            .all(|(_, f)| f.as_ref().map(|f| f.windows_injected > 0).unwrap_or(false)),
        "fault windows must actually open"
    );
    assert!(
        reference.1.iter().all(|s| s.len() > 1000),
        "telemetry must actually stream"
    );
    for shards in [1u32, 2, 4] {
        for placement in [
            Placement::RoundRobin,
            Placement::Reversed,
            Placement::Rebalanced,
        ] {
            let got = run(shards, placement);
            assert_eq!(got, reference, "shards={shards} placement={placement:?}");
        }
    }
}

/// Super-epoch batching is observable only in the barrier count: an
/// uncoupled fleet (no fabric edges, so no envelope can ever exist)
/// produces identical per-host digests with amortization on or off,
/// while the epoch totals collapse from hundreds per slice to one.
#[test]
fn super_epochs_collapse_barriers_without_changing_results() {
    let mut cfg = small_fleet(2);
    cfg.topology = FleetTopology::FaninRing { fanin: 0 };
    let run = |amortize: bool| {
        let mut fleet = Fleet::new(&cfg).expect("valid fleet");
        fleet.set_amortization(amortize);
        let metrics = fleet.run(short_plan()).expect("fleet runs");
        let digests: Vec<u64> = metrics
            .iter()
            .zip(fleet.hosts())
            .map(|(m, h)| fnv64(metrics_json(m, &h.sim().world().counters, None).as_bytes()))
            .collect();
        (digests, fleet.epochs(), fleet.super_epochs())
    };
    let (amortized, a_epochs, a_super) = run(true);
    let (classic, c_epochs, c_super) = run(false);
    assert_eq!(amortized, classic, "digests must not depend on batching");
    assert_eq!(a_epochs, 2, "one super-epoch per run_to slice");
    assert_eq!(a_super, 2);
    assert!(c_epochs > 100, "classic epochs: {c_epochs}");
    assert_eq!(c_super, 0);
}
