//! Figure-shape regression tests: quick (abbreviated) versions of each
//! paper figure's headline assertions, so a change that silently breaks
//! the reproduction fails CI rather than being discovered at bench time.
//!
//! These use short runs; the full-resolution sweeps live in the bench
//! harnesses.

use hostcc::cluster::{simulate, summarize, ClusterConfig};
use hostcc::experiment::{run as try_run, sweep as try_sweep, RunPlan, SweepPoint};
use hostcc::scenarios;
use hostcc::TestbedConfig;

/// These figure tests drive known-valid configurations; unwrap the
/// panic-free experiment API at the edge.
fn run(cfg: TestbedConfig, plan: RunPlan) -> hostcc::RunMetrics {
    try_run(cfg, plan).expect("figure config runs")
}

fn sweep<L: Send + std::fmt::Debug>(
    points: Vec<(L, TestbedConfig)>,
    plan: RunPlan,
) -> Vec<SweepPoint<L>> {
    try_sweep(points, plan).expect("figure configs run")
}

fn plan() -> RunPlan {
    RunPlan {
        warmup: hostcc::substrate::sim::SimDuration::from_millis(15),
        measure: hostcc::substrate::sim::SimDuration::from_millis(15),
    }
}

#[test]
fn fig3_shape() {
    let pts = sweep(
        vec![
            ((4u32, true), scenarios::fig3(4, true)),
            ((4, false), scenarios::fig3(4, false)),
            ((16, true), scenarios::fig3(16, true)),
            ((16, false), scenarios::fig3(16, false)),
        ],
        plan(),
    );
    let get = |c: u32, on: bool| {
        pts.iter()
            .find(|p| p.label == (c, on))
            .map(|p| &p.metrics)
            .unwrap()
    };
    // CPU-bound regime: IOMMU setting irrelevant, ~46 Gbps at 4 cores.
    let t4_on = get(4, true).app_throughput_gbps();
    let t4_off = get(4, false).app_throughput_gbps();
    assert!((t4_on - t4_off).abs() < 2.0, "{t4_on} vs {t4_off}");
    assert!((t4_on - 46.0).abs() < 4.0, "4-core ramp point: {t4_on}");
    // Interconnect-bound regime: OFF near ceiling, ON degraded with misses.
    let on16 = get(16, true);
    let off16 = get(16, false);
    assert!(off16.app_throughput_gbps() > 86.0);
    assert!(on16.app_throughput_gbps() < off16.app_throughput_gbps() - 5.0);
    assert!(on16.iotlb_misses_per_packet() > 1.5);
    assert!(on16.drop_rate() > 0.01);
    assert_eq!(off16.iotlb_misses, 0);
}

#[test]
fn fig4_shape() {
    let huge = run(scenarios::fig4(16, true), plan());
    let small = run(scenarios::fig4(16, false), plan());
    // >30% slower than the IOMMU-off ceiling, worse than hugepages, more
    // misses per packet (deeper walks, twice the payload pages).
    assert!(small.app_throughput_gbps() < 0.7 * 92.0);
    assert!(small.app_throughput_gbps() < huge.app_throughput_gbps());
    assert!(small.iotlb_misses_per_packet() > huge.iotlb_misses_per_packet() + 1.0);
}

#[test]
fn fig5_shape() {
    let small = run(scenarios::fig5(4, true), plan());
    let large = run(scenarios::fig5(16, true), plan());
    assert!(
        large.iotlb_misses_per_packet() > small.iotlb_misses_per_packet() + 0.4,
        "bigger regions, more misses: {} vs {}",
        small.iotlb_misses_per_packet(),
        large.iotlb_misses_per_packet()
    );
    assert!(large.app_throughput_gbps() < small.app_throughput_gbps());
    // IOMMU OFF is flat and clean regardless of region size.
    let off = run(scenarios::fig5(16, false), plan());
    assert!(off.app_throughput_gbps() > 88.0);
    assert_eq!(off.host_drops(), 0);
}

#[test]
fn fig6_shape() {
    let pts = sweep(
        vec![
            ((0u32, false), scenarios::fig6(0, false)),
            ((15, false), scenarios::fig6(15, false)),
            ((15, true), scenarios::fig6(15, true)),
        ],
        plan(),
    );
    let get = |c: u32, on: bool| {
        pts.iter()
            .find(|p| p.label == (c, on))
            .map(|p| &p.metrics)
            .unwrap()
    };
    let clean = get(0, false);
    let noisy_off = get(15, false);
    let noisy_on = get(15, true);
    // Antagonist saturates the bus and costs throughput.
    assert!(noisy_off.memory_bandwidth_gbytes() > 75.0);
    assert!(noisy_off.app_throughput_gbps() < clean.app_throughput_gbps() * 0.85);
    // IOMMU-on is strictly worse under the same antagonism.
    assert!(noisy_on.app_throughput_gbps() < noisy_off.app_throughput_gbps());
    // Drops at clearly sub-line-rate utilisation.
    assert!(noisy_off.host_drops() > 0);
    assert!(noisy_off.link_utilization(100e9) < 0.9);
}

#[test]
fn fig1_shape() {
    let points = simulate(
        ClusterConfig {
            samples: 24,
            seed: 7,
            heavy_antagonist_fraction: 0.35,
        },
        RunPlan::quick(),
    );
    let s = summarize(&points);
    assert!(
        s.utilization_drop_correlation > 0.0,
        "positive correlation required: {}",
        s.utilization_drop_correlation
    );
    assert!(s.any_drop_fraction > 0.1, "some hosts must drop");
}

#[test]
fn blindspot_shape() {
    // The central §3.1 narrative: at the deployed target, drops with the
    // signal below threshold; with a big buffer, signal restored and drops
    // gone.
    let deployed = run(scenarios::cc_blindspot(14, 100), plan());
    assert!(deployed.drop_rate() > 0.01);
    assert!(deployed.host_delay_p50_us() < 105.0);

    let big_buffer = run(
        scenarios::with_nic_buffer(scenarios::cc_blindspot(14, 100), 4 << 20),
        plan(),
    );
    assert_eq!(big_buffer.host_drops(), 0);
    assert!(big_buffer.host_delay_p99_us() > 100.0);
}

#[test]
fn ablation_directions_hold() {
    // Each §4 direction must keep its sign at quick resolution.
    let base = run(scenarios::fig3(14, true), plan());
    let iotlb = run(
        scenarios::with_iotlb_entries(scenarios::fig3(14, true), 512),
        plan(),
    );
    assert!(iotlb.app_throughput_gbps() > base.app_throughput_gbps() + 3.0);

    let bus = run(scenarios::fig6(12, false), plan());
    let qos = run(
        scenarios::with_membw_qos(scenarios::fig6(12, false), 0.5),
        plan(),
    );
    assert!(qos.app_throughput_gbps() > bus.app_throughput_gbps() + 5.0);

    let numa = run(
        scenarios::with_remote_antagonist(scenarios::fig6(12, false)),
        plan(),
    );
    assert!(numa.app_throughput_gbps() > bus.app_throughput_gbps() + 5.0);
}
