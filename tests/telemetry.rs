//! Integration tests for the telemetry subsystem: sampling is
//! observational (bit-identical metrics with telemetry on or off),
//! bit-deterministic across dispatch modes and repeated runs, and the
//! episode detector attributes cc_blindspot's drops to a host-side cause
//! at well under full link utilization — the paper's headline claim made
//! machine-checkable.

use hostcc::substrate::sim::SimDuration;
use hostcc::{
    metrics_json, scenarios, RootCause, RunMetrics, Simulation, TelemetryConfig, TelemetrySample,
};

fn small() -> hostcc::TestbedConfig {
    let mut cfg = scenarios::fig3(8, true);
    cfg.senders = 6;
    cfg
}

const WARMUP: SimDuration = SimDuration::from_millis(2);
const MEASURE: SimDuration = SimDuration::from_millis(8);

/// Run with telemetry installed; returns the metrics plus the full
/// retained sample stream (bounded by the ring capacity).
fn run_telemetry(
    mut cfg: hostcc::TestbedConfig,
    tcfg: TelemetryConfig,
    batched: bool,
) -> (RunMetrics, Vec<TelemetrySample>) {
    cfg.telemetry = tcfg;
    let mut sim = Simulation::new(cfg);
    sim.set_batched(batched);
    let m = sim.try_run(WARMUP, MEASURE).expect("test config runs");
    let samples: Vec<TelemetrySample> = sim.world().telemetry.samples().copied().collect();
    (m, samples)
}

/// Telemetry is observational only: metrics with the sampler on are
/// bit-identical to metrics with it off (modulo the summary section
/// itself), and the golden-digest fields in particular cannot move.
#[test]
fn telemetry_on_leaves_metrics_bit_identical() {
    let off = {
        let mut sim = Simulation::new(small());
        sim.try_run(WARMUP, MEASURE).expect("runs")
    };
    let (on, samples) = run_telemetry(small(), TelemetryConfig::enabled(), true);
    assert!(!samples.is_empty());
    assert_eq!(off.delivered_packets, on.delivered_packets);
    assert_eq!(off.delivered_payload_bytes, on.delivered_payload_bytes);
    assert_eq!(off.drops_buffer_full, on.drops_buffer_full);
    assert_eq!(off.drops_no_descriptor, on.drops_no_descriptor);
    assert_eq!(off.iotlb_misses, on.iotlb_misses);
    assert_eq!(off.retransmits, on.retransmits);
    assert_eq!(off.host_delay.sum(), on.host_delay.sum());
    assert_eq!(off.rtt.sum(), on.rtt.sum());
    assert!(off.telemetry.is_none());
    assert!(on.telemetry.is_some());
}

/// The sample stream (and everything derived from it: episodes,
/// attributions, summary) is bit-identical under batched slot-drain and
/// per-event dispatch, and across repeated same-seed runs.
#[test]
fn sample_stream_is_bit_identical_across_dispatch_modes_and_reruns() {
    let tcfg = TelemetryConfig::enabled();
    let (m_b, s_b) = run_telemetry(small(), tcfg, true);
    let (m_p, s_p) = run_telemetry(small(), tcfg, false);
    let (m_r, s_r) = run_telemetry(small(), tcfg, true);
    assert!(!s_b.is_empty());
    assert_eq!(s_b, s_p, "batched vs per-event sample streams diverged");
    assert_eq!(s_b, s_r, "same-seed reruns diverged");
    assert_eq!(m_b.telemetry, m_p.telemetry);
    assert_eq!(m_b.telemetry, m_r.telemetry);
}

/// Same contract at coarse time: with the 64 ns grid and chain fusion on,
/// telemetry ticks land on quantised instants identical in both dispatch
/// modes, so the sample stream (and the episode/attribution summary
/// derived from it) stays bit-identical batched vs per-event and across
/// reruns. Fused chains must not perturb sampling either — `on_packet`
/// records the same host-delay/cpu decomposition the unfused path would.
#[test]
fn coarse_sample_stream_is_bit_identical_across_dispatch_modes() {
    let tcfg = TelemetryConfig::enabled();
    let cfg = scenarios::with_coarse_time(small());
    let (m_b, s_b) = run_telemetry(cfg.clone(), tcfg, true);
    let (m_p, s_p) = run_telemetry(cfg.clone(), tcfg, false);
    let (m_r, s_r) = run_telemetry(cfg, tcfg, true);
    assert!(!s_b.is_empty());
    // Every sampling instant sits on the 64 ns grid.
    assert!(
        s_b.iter().all(|s| s.t_ns % 64 == 0),
        "coarse-time telemetry ticks must land on the quantised grid"
    );
    assert_eq!(s_b, s_p, "batched vs per-event sample streams diverged");
    assert_eq!(s_b, s_r, "same-seed reruns diverged");
    assert_eq!(m_b.telemetry, m_p.telemetry);
    assert_eq!(m_b.telemetry, m_r.telemetry);
}

/// The headline acceptance test: the paper's §2 blind spot — host drops
/// while the access link looks uncongested — must yield at least one
/// detected episode attributed to a host-side cause. The config is
/// cc_blindspot in the fleet's bursty regime (the Fig. 1 scatter:
/// line-rate bursts at ~40% average utilization, a 256 KiB NIC buffer):
/// "drops at 38% link utilization, attributed: IOTLB".
#[test]
fn blindspot_episode_attributes_to_host_side_cause_at_low_utilization() {
    let mut cfg = scenarios::cc_blindspot(14, 100);
    cfg.duty_cycle = 0.4;
    let cfg = scenarios::with_nic_buffer(cfg, 256 << 10);
    let link_bps = cfg.access_link_bps;
    let (m, _) = run_telemetry(cfg, TelemetryConfig::enabled(), true);
    let t = m.telemetry.as_ref().expect("telemetry ran");
    assert!(t.samples > 100, "sampler ticked: {}", t.samples);
    assert!(
        !t.episodes.is_empty(),
        "blindspot run must surface at least one congestion episode"
    );
    let attributed: Vec<_> = t
        .episodes
        .iter()
        .filter(|e| matches!(e.cause, RootCause::IotlbPressure | RootCause::MemBandwidth))
        .collect();
    assert!(
        !attributed.is_empty(),
        "expected a host-side attribution (IOTLB or memory bandwidth), got {:?}",
        t.episodes
    );
    // Drops happened (that is what makes it an episode worth explaining)…
    assert!(attributed.iter().any(|e| e.drops > 0));
    assert!(m.host_drops() > 0);
    // …while the fabric-facing signal said "no congestion": the access
    // link averaged under half its capacity over the measurement window.
    let util = m.link_utilization(link_bps);
    assert!(
        util < 0.5,
        "blindspot means drops at low link utilization, got {util:.3}"
    );
}

/// The JSON export carries the telemetry section exactly when telemetry
/// ran, with parseable episode records.
#[test]
fn metrics_json_round_trips_telemetry_section() {
    use hostcc::substrate::trace::json;
    let (m, _) = run_telemetry(small(), TelemetryConfig::enabled(), true);
    let mut sim = Simulation::new(small());
    let off = sim.try_run(WARMUP, MEASURE).expect("runs");

    let reg = hostcc::CounterRegistry::new();
    let doc_on = metrics_json(&m, &reg, None);
    let doc_off = metrics_json(&off, &reg, None);
    assert!(!doc_off.contains("\"telemetry\""));
    let v = json::parse(&doc_on).expect("valid JSON");
    let t = v.get("telemetry").expect("telemetry section");
    assert!(t.get("samples").unwrap().as_f64().unwrap() > 0.0);
    assert!(t.get("episodes").unwrap().as_arr().is_some());
}

/// The flight recorder captures bounded retroactive dumps on drop bursts,
/// and the dumps end at (or before) the trigger instant.
#[test]
fn flight_recorder_captures_drop_bursts() {
    let cfg = scenarios::cc_blindspot(14, 100);
    let mut tcfg = TelemetryConfig::enabled().with_flight_recorder();
    // Blindspot drops come in waves of a few per 5 µs window at this
    // scale; any dropping window qualifies as a burst (the inter-dump
    // cooldown still bounds capture volume).
    tcfg.drop_burst_threshold = 1;
    let mut with = cfg.clone();
    with.telemetry = tcfg;
    let mut sim = Simulation::new(with);
    let m = sim.try_run(WARMUP, MEASURE).expect("runs");
    assert!(m.host_drops() > 0, "blindspot run should drop");
    let dumps = sim.world().telemetry.flight_dumps();
    assert!(!dumps.is_empty(), "drop bursts should trigger the recorder");
    for d in dumps {
        assert!(!d.samples.is_empty());
        assert!(d.samples.len() <= tcfg.flight_dump_samples);
        assert!(d.samples.last().unwrap().t_ns <= d.t_ns);
        // Oldest-first ordering.
        for w in d.samples.windows(2) {
            assert!(w[0].t_ns < w[1].t_ns);
        }
    }
    // Dumps are capped by the preallocated slot count.
    assert!(dumps.len() <= tcfg.flight_max_dumps);
}

/// Streaming sink: every sample lands as one JSONL line, incrementally.
#[test]
fn jsonl_sink_receives_every_sample() {
    use hostcc::substrate::trace::json;
    use std::io::Write;
    use std::sync::{Arc, Mutex};

    #[derive(Clone)]
    struct Shared(Arc<Mutex<Vec<u8>>>);
    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let sink = Shared(Arc::new(Mutex::new(Vec::new())));
    let mut cfg = small();
    cfg.telemetry = TelemetryConfig::enabled();
    let mut sim = Simulation::new(cfg);
    sim.world_mut().telemetry.set_sink(Box::new(sink.clone()));
    sim.try_run(WARMUP, MEASURE).expect("runs");
    let taken = sim.world().telemetry.samples_taken();
    let bytes = sink.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("utf8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len() as u64, taken, "one JSONL line per sample");
    let first = json::parse(lines[0]).expect("line parses");
    assert!(first.get("t_ns").is_some());
    assert!(first.get("buffer_frac").is_some());
    assert!(first.get("walks").is_some());
}
