//! Chaos tests: deterministic fault injection and recovery.
//!
//! Each of the six fault kinds gets a scenario-level recovery test: a
//! one-shot fault window is placed inside the measurement interval and the
//! run must (a) complete without tripping the progress watchdog, (b) show
//! the kind-specific damage in the fault counters, (c) recover — post-fault
//! goodput within 10% of the pre-fault mean — and (d) leave no flow
//! permanently stalled. The registered chaos scenarios and the zero-fault
//! bit-identity guarantees are covered at the end.

use hostcc::experiment::{run as try_run, RunPlan};
use hostcc::substrate::sim::SimDuration;
use hostcc::{
    metrics_json, scenarios, FaultKind, FaultPlan, FaultSummary, RunMetrics, Simulation,
    TestbedConfig, TraceConfig,
};

/// A small testbed kept cheap enough to run six chaos cases in CI, with
/// partial-ACK recovery on (like the registered chaos scenarios) so
/// whole-window losses clear at ACK-clock speed.
fn small() -> TestbedConfig {
    let mut cfg = scenarios::baseline();
    cfg.senders = 6;
    cfg.receiver_threads = 4;
    cfg.flow.partial_ack_rtx = true;
    cfg
}

/// Run `small()` with a single `kind` window opening 2 ms into the
/// measurement interval, leaving a long (~32 ms) post-fault observation
/// window: `recovered` compares phase *means*, so the RTO dead time after
/// a blackout must be a small fraction of the post-fault phase.
fn run_one_shot(kind: FaultKind, duration_us: u64) -> (RunMetrics, Simulation) {
    let mut cfg = small();
    cfg.faults = FaultPlan::new().one_shot(
        kind,
        SimDuration::from_millis(4),
        SimDuration::from_micros(duration_us),
    );
    let mut sim = Simulation::new(cfg);
    let m = sim
        .try_run(SimDuration::from_millis(2), SimDuration::from_millis(34))
        .expect("chaos run must not stall");
    (m, sim)
}

/// The common recovery contract every fault kind must satisfy.
fn assert_recovered(m: &RunMetrics, name: &str) -> FaultSummary {
    let s = m.faults.expect("fault plan must produce a summary");
    assert_eq!(s.windows_injected, 1, "{name}: exactly one window");
    assert!(s.goodput_before_bps > 0.0, "{name}: no pre-fault goodput");
    assert!(s.goodput_after_bps > 0.0, "{name}: no post-fault goodput");
    assert!(
        s.recovered,
        "{name}: post-fault goodput must be within 10% of pre-fault: {s:?}"
    );
    s
}

/// No flow is permanently stalled: after the run, every sender keeps
/// acknowledging new data and every receiver flow keeps delivering.
fn assert_all_flows_progress(sim: &mut Simulation, name: &str) {
    let before = sim.world().flow_progress();
    sim.advance(SimDuration::from_millis(2));
    let after = sim.world().flow_progress();
    for (i, (b, a)) in before.iter().zip(&after).enumerate() {
        assert!(
            a.0 > b.0,
            "{name}: flow {i} stopped acking ({} -> {})",
            b.0,
            a.0
        );
        assert!(
            a.1 > b.1,
            "{name}: flow {i} stopped delivering ({} -> {})",
            b.1,
            a.1
        );
    }
}

#[test]
fn pcie_replay_recovers() {
    let (m, mut sim) = run_one_shot(FaultKind::PcieReplay { nak_rate: 0.3 }, 400);
    assert_recovered(&m, "pcie_replay");
    let w = sim.world();
    assert!(
        w.counters.lifetime("pcie.replay.replays") > 0,
        "NAKs must force TLP replays"
    );
    assert!(
        w.counters.lifetime("pcie.replay.ns") > 0,
        "replay-timer backoff must cost link time"
    );
    assert_all_flows_progress(&mut sim, "pcie_replay");
}

#[test]
fn link_flap_recovers() {
    let (m, mut sim) = run_one_shot(FaultKind::LinkFlap, 400);
    let s = assert_recovered(&m, "link_flap");
    assert!(s.link_dropped_packets > 0, "blackout must eat packets");
    assert!(
        m.retransmits > 0,
        "transport must retransmit what the flap destroyed"
    );
    assert!(
        s.goodput_during_bps < s.goodput_before_bps,
        "goodput must dip while the link is dark: {s:?}"
    );
    assert_all_flows_progress(&mut sim, "link_flap");
}

#[test]
fn descriptor_stall_recovers() {
    let (m, mut sim) = run_one_shot(FaultKind::DescriptorStall, 400);
    let s = assert_recovered(&m, "descriptor_stall");
    assert!(
        s.deferred_refills > 0,
        "stall window must defer descriptor refills"
    );
    assert_all_flows_progress(&mut sim, "descriptor_stall");
}

#[test]
fn iotlb_storm_recovers() {
    let (m, mut sim) = run_one_shot(
        FaultKind::IotlbStorm {
            flush_period: SimDuration::from_micros(50),
        },
        500,
    );
    let s = assert_recovered(&m, "iotlb_storm");
    assert!(
        s.iotlb_flushes >= 10,
        "a 500us window with 50us flush period must flush ~10 times, got {}",
        s.iotlb_flushes
    );
    assert_all_flows_progress(&mut sim, "iotlb_storm");
}

#[test]
fn mem_throttle_recovers() {
    // The factor scales the NIC's memory-bandwidth *share*, and the
    // small testbed is CPU-bound far below that share — so the cut must
    // be deep (1%) before the grant falls under the delivery demand.
    let (m, mut sim) = run_one_shot(FaultKind::MemThrottle { factor: 0.01 }, 400);
    let s = assert_recovered(&m, "mem_throttle");
    assert!(
        s.goodput_during_bps < s.goodput_before_bps,
        "a 99% bandwidth cut must dent goodput: {s:?}"
    );
    assert_all_flows_progress(&mut sim, "mem_throttle");
}

#[test]
fn core_preempt_recovers() {
    let (m, mut sim) = run_one_shot(FaultKind::CorePreempt { cores: 2 }, 400);
    let s = assert_recovered(&m, "core_preempt");
    // Preemption only charges the time a core was not already busy, so
    // the stolen time is positive but below 2 x 400us.
    assert!(s.preempt_ns > 0, "preemption must steal receiver-core time");
    assert_all_flows_progress(&mut sim, "core_preempt");
}

/// The registered chaos scenarios run to completion under the quick plan
/// (watchdog never fires), inject their recurring windows, and keep
/// delivering. Latency-only faults (replay, invalidate) must also meet
/// the full recovery bar; the flap's recurring blackouts leave only ~3 ms
/// between the last window and the end of the run, so the bar there is
/// that goodput is climbing back, not already within 10%.
#[test]
fn chaos_scenarios_run_and_recover() {
    for (name, cfg, full_recovery) in [
        ("chaos-replay", scenarios::chaos_replay(), true),
        ("chaos-flap", scenarios::chaos_flap(), false),
        ("chaos-invalidate", scenarios::chaos_invalidate(), true),
    ] {
        let m =
            try_run(cfg, RunPlan::quick()).unwrap_or_else(|e| panic!("{name} must not stall: {e}"));
        let s = m.faults.expect("chaos scenarios carry fault plans");
        assert!(s.windows_injected > 0, "{name}: no windows opened");
        if full_recovery {
            assert!(
                s.recovered,
                "{name}: must recover between recurring windows: {s:?}"
            );
        } else {
            assert!(
                s.goodput_after_bps > s.goodput_during_bps,
                "{name}: goodput must climb once windows stop: {s:?}"
            );
        }
        assert!(m.delivered_packets > 0, "{name}: nothing delivered");
    }
}

/// Slot-drain batching is invisible to fault injection: every registered
/// chaos scenario produces bit-identical results with batching on (the
/// library default) and off — same dispatched-event count, same fault
/// counters, same recovery verdict, same exported metrics JSON. Faults
/// mutate world state mid-slot (blackouts drop packets, storms flush the
/// IOTLB), so this pins the batch paths to the exact per-event
/// interleaving under the nastiest workloads we have.
#[test]
fn chaos_runs_are_batching_invariant() {
    let plan = RunPlan::quick();
    for (name, cfg) in [
        ("chaos-replay", scenarios::chaos_replay()),
        ("chaos-flap", scenarios::chaos_flap()),
        ("chaos-invalidate", scenarios::chaos_invalidate()),
    ] {
        let mut batched = Simulation::new(cfg.clone());
        let mb = batched
            .try_run(plan.warmup, plan.measure)
            .unwrap_or_else(|e| panic!("{name} (batched) must not stall: {e}"));
        let mut per_event = Simulation::new(cfg);
        per_event.set_batched(false);
        let mp = per_event
            .try_run(plan.warmup, plan.measure)
            .unwrap_or_else(|e| panic!("{name} (per-event) must not stall: {e}"));
        assert_eq!(
            batched.dispatched_total(),
            per_event.dispatched_total(),
            "{name}: dispatched-event counts diverged"
        );
        let sb = mb.faults.expect("chaos scenarios carry fault plans");
        let sp = mp.faults.expect("chaos scenarios carry fault plans");
        assert_eq!(
            sb, sp,
            "{name}: fault summary (counters/recovery verdict) diverged"
        );
        let jb = metrics_json(&mb, &batched.world().counters, None);
        let jp = metrics_json(&mp, &per_event.world().counters, None);
        assert_eq!(jb, jp, "{name}: metrics JSON diverged");
    }
}

/// The batching-invariance contract holds at coarse time too: the 64 ns
/// grid quantises every fault window edge and storm tick onto wheel
/// slots (bigger slot populations, more batch-path coverage), and chain
/// fusion auto-disables under a fault plan (CorePreempt rewrites
/// `core_free_at`, which would invalidate launch-time reservations) — so
/// batched and per-event dispatch must still agree bit for bit.
#[test]
fn coarse_chaos_runs_are_batching_invariant() {
    let plan = RunPlan::quick();
    for (name, cfg) in [
        ("coarse-chaos-replay", scenarios::chaos_replay()),
        ("coarse-chaos-flap", scenarios::chaos_flap()),
        ("coarse-chaos-invalidate", scenarios::chaos_invalidate()),
    ] {
        let cfg = scenarios::with_coarse_time(cfg);
        let mut batched = Simulation::new(cfg.clone());
        let mb = batched
            .try_run(plan.warmup, plan.measure)
            .unwrap_or_else(|e| panic!("{name} (batched) must not stall: {e}"));
        let mut per_event = Simulation::new(cfg);
        per_event.set_batched(false);
        let mp = per_event
            .try_run(plan.warmup, plan.measure)
            .unwrap_or_else(|e| panic!("{name} (per-event) must not stall: {e}"));
        assert_eq!(
            batched.dispatched_total(),
            per_event.dispatched_total(),
            "{name}: dispatched-event counts diverged"
        );
        assert_eq!(
            mb.faults, mp.faults,
            "{name}: fault summary (counters/recovery verdict) diverged"
        );
        let jb = metrics_json(&mb, &batched.world().counters, None);
        let jp = metrics_json(&mp, &per_event.world().counters, None);
        assert_eq!(jb, jp, "{name}: metrics JSON diverged");
    }
}

/// Chaos runs are bit-for-bit reproducible: same seed, same plan, same
/// metrics — faults included.
#[test]
fn chaos_runs_are_deterministic() {
    let a = try_run(scenarios::chaos_flap(), RunPlan::quick()).unwrap();
    let b = try_run(scenarios::chaos_flap(), RunPlan::quick()).unwrap();
    assert_eq!(a.delivered_packets, b.delivered_packets);
    assert_eq!(a.retransmits, b.retransmits);
    assert_eq!(a.host_delay.sum(), b.host_delay.sum());
    assert_eq!(a.faults, b.faults);
}

/// The watchdog never fires on a clean (non-chaos) configuration, and a
/// zero-fault run carries no fault summary — in memory or in the JSON
/// export.
#[test]
fn zero_fault_runs_have_no_fault_artifacts() {
    let cfg = small();
    assert!(cfg.faults.is_empty(), "baseline must carry no plan");
    let mut sim = Simulation::with_trace(cfg, TraceConfig::enabled(1024));
    let m = sim
        .try_run(SimDuration::from_millis(2), SimDuration::from_millis(3))
        .expect("clean config must never trip the watchdog");
    assert!(m.faults.is_none(), "empty plan must not produce a summary");
    let json = metrics_json(&m, &sim.world().counters, sim.profile());
    assert!(
        !json.contains("\"faults\""),
        "zero-fault metrics JSON must omit the faults block"
    );
    assert!(
        !json.contains("faults.injected"),
        "zero-fault runs must not register fault counters"
    );
}

/// Telemetry under chaos is bit-identical across dispatch modes: for all
/// three registered chaos scenarios, the sample stream, episode table
/// (boundaries + attributions) and flight-recorder dumps match exactly
/// between batched slot-drain and per-event dispatch — fault windows
/// included (window opens trigger flight dumps).
#[test]
fn chaos_telemetry_is_batching_invariant() {
    let plan = RunPlan::quick();
    for (name, cfg) in [
        ("chaos-replay", scenarios::chaos_replay()),
        ("chaos-flap", scenarios::chaos_flap()),
        ("chaos-invalidate", scenarios::chaos_invalidate()),
    ] {
        let mut cfg = cfg;
        cfg.telemetry = hostcc::TelemetryConfig::enabled().with_flight_recorder();
        let mut batched = Simulation::new(cfg.clone());
        let mb = batched
            .try_run(plan.warmup, plan.measure)
            .unwrap_or_else(|e| panic!("{name} (batched) must not stall: {e}"));
        let mut per_event = Simulation::new(cfg);
        per_event.set_batched(false);
        let mp = per_event
            .try_run(plan.warmup, plan.measure)
            .unwrap_or_else(|e| panic!("{name} (per-event) must not stall: {e}"));

        let tb = &batched.world().telemetry;
        let tp = &per_event.world().telemetry;
        assert!(tb.samples_taken() > 0, "{name}: sampler never ticked");
        let sb: Vec<_> = tb.samples().copied().collect();
        let sp: Vec<_> = tp.samples().copied().collect();
        assert_eq!(sb, sp, "{name}: telemetry sample streams diverged");
        assert_eq!(
            mb.telemetry, mp.telemetry,
            "{name}: telemetry summary (episodes/attributions) diverged"
        );
        // Fault windows open at identical instants, so the flight
        // recorder captures identical dumps.
        assert_eq!(
            tb.flight_dumps(),
            tp.flight_dumps(),
            "{name}: flight dumps diverged"
        );
        assert!(
            !tb.flight_dumps().is_empty(),
            "{name}: fault windows must trigger flight dumps"
        );
        // Telemetry remains observational under chaos too.
        assert_eq!(mb.faults, mp.faults, "{name}: fault summary diverged");
    }
}
