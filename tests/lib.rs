//! Integration-test package for the `hostcc` workspace. The actual tests
//! live in the `[[test]]` targets (`end_to_end.rs`, `properties.rs`,
//! `figures.rs`).
